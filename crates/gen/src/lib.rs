//! # mcn-gen
//!
//! Synthetic workload generation matching the experimental setup of the
//! paper's Section VI:
//!
//! * [`network`] — San-Francisco-scale synthetic road networks (planar grid
//!   with jitter, removed edges and diagonal shortcuts), always connected;
//! * [`costs`] — independent / correlated / anti-correlated edge-cost
//!   assignment with `d ∈ [2, 8]` cost types;
//! * [`facilities`] — facility sets forming Gaussian clusters around random
//!   network nodes (10 clusters in the paper);
//! * [`workload`] — one-call assembly of a full experiment workload (graph +
//!   query locations) from a [`WorkloadSpec`], including the paper's default
//!   parameters and scaled-down variants;
//! * [`preferences`] — deterministic per-user preference-vector pools for
//!   the scalarized serving tier (`mcn-alpha`).
//!
//! Everything is deterministic given the spec's seed, so experiments are
//! reproducible run to run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod costs;
pub mod facilities;
pub mod network;
pub mod preferences;
pub mod workload;

pub use costs::{assign_costs, CostDistribution};
pub use facilities::{place_facilities, FacilitySpec};
pub use network::{build_graph, generate_topology, NetworkSpec, Topology};
pub use preferences::{generate_preferences, PreferenceSpec};
pub use workload::{generate_workload, workload_on_graph, Workload, WorkloadSpec};
