//! Query requests and their outcomes.

use mcn_core::{
    skyline_query, topk_query, Algorithm, QueryStats, SkylineFacility, TopKEntry, TopKIter,
    WeightedSum,
};
use mcn_graph::NetworkLocation;
use mcn_storage::StoreView;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One self-contained preference query, ready to be scheduled.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// A complete MCN skyline query.
    Skyline {
        /// The query location.
        location: NetworkLocation,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
    /// A batch top-k query with a weighted-sum aggregate.
    TopK {
        /// The query location.
        location: NetworkLocation,
        /// Weighted-sum coefficients; the length must equal the store's `d`.
        weights: Vec<f64>,
        /// Number of results.
        k: usize,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
    /// An incremental top-k query: drive a [`TopKIter`] for the first `take`
    /// results without fixing `k` up front.
    TopKIncremental {
        /// The query location.
        location: NetworkLocation,
        /// Weighted-sum coefficients; the length must equal the store's `d`.
        weights: Vec<f64>,
        /// How many results to draw from the iterator.
        take: usize,
        /// LSA or CEA.
        algorithm: Algorithm,
    },
}

impl QueryRequest {
    /// Short kind label for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRequest::Skyline { .. } => "skyline",
            QueryRequest::TopK { .. } => "topk",
            QueryRequest::TopKIncremental { .. } => "topk-inc",
        }
    }

    /// The query location — what region-affine scheduling tags a request by
    /// (via `PartitionMap::region_of_location`).
    pub fn location(&self) -> NetworkLocation {
        match self {
            QueryRequest::Skyline { location, .. }
            | QueryRequest::TopK { location, .. }
            | QueryRequest::TopKIncremental { location, .. } => *location,
        }
    }

    /// Executes the request against `store` (any [`StoreView`] — monolithic
    /// or region-partitioned) on the calling thread.
    pub fn execute<S: StoreView + ?Sized>(&self, store: &Arc<S>) -> QueryOutcome {
        let started = Instant::now();
        let (output, stats) = match self {
            QueryRequest::Skyline {
                location,
                algorithm,
            } => {
                let r = skyline_query(store, *location, *algorithm);
                (QueryOutput::Skyline(r.facilities), r.stats)
            }
            QueryRequest::TopK {
                location,
                weights,
                k,
                algorithm,
            } => {
                let r = topk_query(
                    store,
                    *location,
                    WeightedSum::new(weights.clone()),
                    *k,
                    *algorithm,
                );
                (QueryOutput::TopK(r.entries), r.stats)
            }
            QueryRequest::TopKIncremental {
                location,
                weights,
                take,
                algorithm,
            } => {
                let aggregate = WeightedSum::new(weights.clone());
                match algorithm {
                    Algorithm::Lsa => {
                        let mut it = TopKIter::lsa(store.clone(), *location, aggregate);
                        let entries: Vec<TopKEntry> = it.by_ref().take(*take).collect();
                        let stats = it.stats();
                        (QueryOutput::TopK(entries), stats)
                    }
                    Algorithm::Cea => {
                        let mut it = TopKIter::cea(store.clone(), *location, aggregate);
                        let entries: Vec<TopKEntry> = it.by_ref().take(*take).collect();
                        let stats = it.stats();
                        (QueryOutput::TopK(entries), stats)
                    }
                }
            }
        };
        QueryOutcome {
            output,
            stats,
            wall: started.elapsed(),
        }
    }
}

/// The payload a query produced.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Skyline facilities in pinning order.
    Skyline(Vec<SkylineFacility>),
    /// Top-k entries in ascending aggregate-cost order.
    TopK(Vec<TopKEntry>),
}

impl QueryOutput {
    /// Number of result members.
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Skyline(v) => v.len(),
            QueryOutput::TopK(v) => v.len(),
        }
    }

    /// True iff the query returned nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A canonical, bit-exact textual form of the result: facility ids with
    /// the raw IEEE-754 bits of every cost. Two outputs are byte-identical
    /// results iff their fingerprints are equal — the determinism check used
    /// by the concurrency tests and the throughput bench.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        match self {
            QueryOutput::Skyline(v) => {
                out.push_str("skyline:");
                for f in v {
                    let _ = write!(out, "{}@", f.facility.raw());
                    for c in f.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push(';');
                }
            }
            QueryOutput::TopK(v) => {
                out.push_str("topk:");
                for e in v {
                    let _ = write!(out, "{}@{:016x}@", e.facility.raw(), e.score.to_bits());
                    for c in e.costs.iter() {
                        let _ = write!(out, "{:016x},", c.to_bits());
                    }
                    out.push(';');
                }
            }
        }
        out
    }
}

/// The result of one scheduled query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// What the query returned.
    pub output: QueryOutput,
    /// Single-query execution statistics. `stats.io` is a store-wide counter
    /// delta and is polluted by overlapping queries — meaningful only when
    /// the engine runs one worker (see the crate docs).
    pub stats: QueryStats,
    /// Wall-clock time from scheduling on a worker to completion.
    pub wall: Duration,
}
