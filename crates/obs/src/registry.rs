//! Named metrics registry: counters, gauges, and histograms keyed by
//! `(name, sorted labels)`.
//!
//! The registry itself is lock-striped by metric name, but the stripes
//! are only touched at *registration* time: `counter()` / `gauge()` /
//! `histogram()` hand back `Arc`-shared atomic handles, so hot loops
//! record through a plain `fetch_add` with no shared-lock traffic.
//! Snapshots lock one stripe at a time (never two at once — no new
//! lock-order edges) and emit metrics sorted by key, so serialization is
//! deterministic for a given set of values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, HistogramSnapshot};

const SHARDS: usize = 8;

/// Identity of a metric: name plus label pairs sorted by label key.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// Monotonic (or snapshot-published) `u64` metric handle. Cloning shares
/// the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Publish an absolute value (used when mirroring an externally
    /// maintained counter such as `IoStats`).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Instantaneous `f64` metric handle (value stored as IEEE-754 bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::SeqCst);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::SeqCst))
    }
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<MetricKey, Counter>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// Lock-striped metric registry. See module docs for the locking story.
pub struct MetricsRegistry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        // FNV-1a over the name: deterministic, no RandomState.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Get or create the counter for `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let _t = mcn_witness::acquire("obs::MetricsRegistry.shards");
        let mut shard = self.shard(name).lock();
        shard.counters.entry(key).or_default().clone()
    }

    /// Get or create the gauge for `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let _t = mcn_witness::acquire("obs::MetricsRegistry.shards");
        let mut shard = self.shard(name).lock();
        shard.gauges.entry(key).or_default().clone()
    }

    /// Get or create the histogram for `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let _t = mcn_witness::acquire("obs::MetricsRegistry.shards");
        let mut shard = self.shard(name).lock();
        shard
            .histograms
            .entry(key)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Fold a histogram snapshot into the registry-owned histogram of the
    /// same name/labels.
    pub fn merge_histogram(&self, snap: &HistogramSnapshot) {
        let labels: Vec<(&str, &str)> = snap
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        self.histogram(&snap.name, &labels).merge(snap);
    }

    /// Point-in-time view of every registered metric, sorted by key.
    ///
    /// Stripes are locked one at a time; values written by the calling
    /// thread (e.g. a `publish` immediately before) are always visible.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for stripe in &self.shards {
            let _t = mcn_witness::acquire("obs::MetricsRegistry.shards");
            let shard = stripe.lock();
            for (key, c) in &shard.counters {
                counters.push(CounterSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: c.get(),
                });
            }
            for (key, g) in &shard.gauges {
                gauges.push(GaugeSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: g.get(),
                });
            }
            for (key, h) in &shard.histograms {
                histograms.push(h.snapshot(key.name.clone(), key.labels.clone()));
            }
        }
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a snapshot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Serializable view of a whole registry, each section sorted by
/// `(name, labels)` — deterministic for a given set of metric values.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter matching `name` and all of `labels` (labels in
    /// any order), if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
            .map(|c| c.value)
    }

    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
            .map(|g| g.value)
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_match(&h.labels, labels))
    }

    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && want
            .iter()
            .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshot_sorts() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("z.metric", &[("tier", "topk")]);
        let b = reg.counter("z.metric", &[("tier", "topk")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        reg.counter("a.metric", &[]).set(7);
        reg.gauge("ratio", &[]).set(0.5);
        reg.histogram("lat", &[("tier", "skyline")]).record(42);

        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].name, "a.metric");
        assert_eq!(snap.counters[1].name, "z.metric");
        assert_eq!(snap.counter_value("z.metric", &[("tier", "topk")]), Some(3));
        assert_eq!(snap.counter_value("a.metric", &[]), Some(7));
        assert_eq!(snap.counter_value("missing", &[]), None);
        assert_eq!(snap.gauge_value("ratio", &[]), Some(0.5));
        let h = snap.histogram("lat", &[("tier", "skyline")]).unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("x", "1"), ("y", "2")]);
        let b = reg.counter("m", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("m", &[("y", "2"), ("x", "1")]), Some(1));
    }

    #[test]
    fn merge_histogram_accumulates_into_registry() {
        let reg = MetricsRegistry::new();
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let snap = h.snapshot("lat", vec![("tier".into(), "alpha-path".into())]);
        reg.merge_histogram(&snap);
        reg.merge_histogram(&snap);
        let out = reg.snapshot();
        let merged = out.histogram("lat", &[("tier", "alpha-path")]).unwrap();
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 60);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("k", "v")]).set(9);
        reg.gauge("g", &[]).set(1.25);
        reg.histogram("h", &[]).record(100);
        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
    }
}
