//! Network edges (road segments) carrying multi-dimensional cost vectors.

use crate::cost::CostVec;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A network edge (road segment) between two nodes, carrying a cost vector.
///
/// Following the paper, edges are undirected by default: the cost vector in
/// either direction is identical. Directed edges are supported by setting
/// [`Edge::directed`]; a directed edge may only be traversed from
/// [`Edge::source`] to [`Edge::target`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The edge identifier.
    pub id: EdgeId,
    /// First end-node (the paper's `v_i` in `⟨v_i, v_j⟩`).
    pub source: NodeId,
    /// Second end-node (the paper's `v_j`).
    pub target: NodeId,
    /// The `d`-dimensional cost vector `w(e)`.
    pub costs: CostVec,
    /// Whether the edge may only be traversed from `source` to `target`.
    pub directed: bool,
}

impl Edge {
    /// Creates an undirected edge.
    #[inline]
    pub fn new(id: EdgeId, source: NodeId, target: NodeId, costs: CostVec) -> Self {
        Self {
            id,
            source,
            target,
            costs,
            directed: false,
        }
    }

    /// Creates a directed edge (traversable only from `source` to `target`).
    #[inline]
    pub fn new_directed(id: EdgeId, source: NodeId, target: NodeId, costs: CostVec) -> Self {
        Self {
            id,
            source,
            target,
            costs,
            directed: true,
        }
    }

    /// Given one end-node, returns the opposite end-node.
    ///
    /// # Panics
    /// Panics if `node` is not an end-node of this edge.
    #[inline]
    pub fn opposite(&self, node: NodeId) -> NodeId {
        if node == self.source {
            self.target
        } else if node == self.target {
            self.source
        } else {
            panic!("{node} is not an end-node of {}", self.id)
        }
    }

    /// Returns true iff `node` is one of the edge's end-nodes.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.source || node == self.target
    }

    /// Returns true iff the edge can be traversed *starting from* `from`.
    ///
    /// Undirected edges can be traversed from either end-node; directed edges
    /// only from their source.
    #[inline]
    pub fn traversable_from(&self, from: NodeId) -> bool {
        if self.directed {
            from == self.source
        } else {
            self.touches(from)
        }
    }

    /// Number of cost types carried by this edge.
    #[inline]
    pub fn num_cost_types(&self) -> usize {
        self.costs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Edge {
        Edge::new(
            EdgeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            CostVec::from_slice(&[3.0, 4.0]),
        )
    }

    #[test]
    fn opposite_end_node() {
        let e = edge();
        assert_eq!(e.opposite(NodeId::new(1)), NodeId::new(2));
        assert_eq!(e.opposite(NodeId::new(2)), NodeId::new(1));
    }

    #[test]
    #[should_panic]
    fn opposite_of_foreign_node_panics() {
        edge().opposite(NodeId::new(9));
    }

    #[test]
    fn traversal_rules() {
        let und = edge();
        assert!(und.traversable_from(NodeId::new(1)));
        assert!(und.traversable_from(NodeId::new(2)));
        assert!(!und.traversable_from(NodeId::new(3)));

        let dir = Edge::new_directed(
            EdgeId::new(1),
            NodeId::new(1),
            NodeId::new(2),
            CostVec::from_slice(&[1.0]),
        );
        assert!(dir.traversable_from(NodeId::new(1)));
        assert!(!dir.traversable_from(NodeId::new(2)));
    }

    #[test]
    fn touches_and_dimensions() {
        let e = edge();
        assert!(e.touches(NodeId::new(1)));
        assert!(!e.touches(NodeId::new(7)));
        assert_eq!(e.num_cost_types(), 2);
    }
}
