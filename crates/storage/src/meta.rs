//! The store header: global metadata persisted in page 0.

use crate::btree::StaticBTree;
use crate::codec::{RecordReader, RecordWriter};
use crate::error::StorageError;
use crate::page::{Page, PageId};
use serde::{Deserialize, Serialize};

const MAGIC: u32 = 0x4D_43_4E_31; // "MCN1"

/// Bytes occupied by the fixed header layout: magic, four counts, three
/// tree handles of three `u32`s each, and three page counts.
pub const HEADER_SIZE: usize = 4 * (1 + 4 + 3 * 3 + 3);

/// Global metadata of a disk-resident MCN store.
///
/// The header records the graph dimensions, the location of the three index
/// trees (adjacency tree, facility tree, edge index) and the number of pages
/// occupied by the MCN data. The latter is what the paper's buffer-size
/// parameter (0 %–2 %) is expressed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageMeta {
    /// Number of cost types `d`.
    pub num_cost_types: u32,
    /// Number of nodes.
    pub num_nodes: u32,
    /// Number of edges.
    pub num_edges: u32,
    /// Number of facilities.
    pub num_facilities: u32,
    /// The adjacency tree (node id → adjacency record position).
    pub adjacency_tree: StaticBTree,
    /// The facility tree (facility id → containing edge + position).
    pub facility_tree: StaticBTree,
    /// The edge index (edge id → end nodes + direction flag).
    pub edge_index: StaticBTree,
    /// Pages of the adjacency file.
    pub adjacency_file_pages: u32,
    /// Pages of the facility file.
    pub facility_file_pages: u32,
    /// Total number of pages occupied by MCN information (files + trees),
    /// excluding the header page.
    pub data_pages: u32,
}

impl StorageMeta {
    /// Serialises the header into a page image.
    pub fn encode(&self) -> Page {
        let mut page = Page::zeroed();
        let mut w = RecordWriter::new(page.bytes_mut());
        w.put_u32(MAGIC);
        w.put_u32(self.num_cost_types);
        w.put_u32(self.num_nodes);
        w.put_u32(self.num_edges);
        w.put_u32(self.num_facilities);
        for tree in [&self.adjacency_tree, &self.facility_tree, &self.edge_index] {
            w.put_u32(tree.root.raw());
            w.put_u32(tree.num_pages);
            w.put_u32(tree.num_entries);
        }
        w.put_u32(self.adjacency_file_pages);
        w.put_u32(self.facility_file_pages);
        w.put_u32(self.data_pages);
        page
    }

    /// Parses a header from a page image.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidHeader`] if the magic number or the
    /// page accounting is wrong.
    pub fn decode(page: &Page) -> Result<Self, StorageError> {
        Self::decode_bytes(page.bytes())
    }

    /// Parses a header from a raw byte image, which need not be a full page.
    ///
    /// # Errors
    /// * [`StorageError::TruncatedHeader`] if fewer than [`HEADER_SIZE`]
    ///   bytes are available;
    /// * [`StorageError::InvalidHeader`] if the magic number is wrong (which
    ///   also catches byte-swapped headers written on the wrong endianness)
    ///   or the recorded page counts cannot describe a real store.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        if bytes.len() < HEADER_SIZE {
            return Err(StorageError::TruncatedHeader {
                required: HEADER_SIZE,
                actual: bytes.len(),
            });
        }
        let mut r = RecordReader::new(bytes, 0);
        let magic = r.get_u32();
        if magic != MAGIC {
            return Err(StorageError::InvalidHeader(format!(
                "bad magic number 0x{magic:08x}"
            )));
        }
        let num_cost_types = r.get_u32();
        let num_nodes = r.get_u32();
        let num_edges = r.get_u32();
        let num_facilities = r.get_u32();
        let mut trees = [StaticBTree {
            root: PageId::new(0),
            num_pages: 0,
            num_entries: 0,
        }; 3];
        for tree in &mut trees {
            tree.root = PageId::new(r.get_u32());
            tree.num_pages = r.get_u32();
            tree.num_entries = r.get_u32();
        }
        let adjacency_file_pages = r.get_u32();
        let facility_file_pages = r.get_u32();
        let data_pages = r.get_u32();
        let meta = Self {
            num_cost_types,
            num_nodes,
            num_edges,
            num_facilities,
            adjacency_tree: trees[0],
            facility_tree: trees[1],
            edge_index: trees[2],
            adjacency_file_pages,
            facility_file_pages,
            data_pages,
        };
        meta.validate_shape()?;
        Ok(meta)
    }

    /// Rejects headers whose page accounting cannot describe a real store:
    /// the data files and index trees must fit inside `data_pages`, and any
    /// non-empty tree must root at a data page (page 0 is the header).
    fn validate_shape(&self) -> Result<(), StorageError> {
        let tree_pages = self.adjacency_tree.num_pages as u64
            + self.facility_tree.num_pages as u64
            + self.edge_index.num_pages as u64;
        let file_pages = self.adjacency_file_pages as u64 + self.facility_file_pages as u64;
        if tree_pages + file_pages > self.data_pages as u64 {
            return Err(StorageError::InvalidHeader(format!(
                "{file_pages} file pages + {tree_pages} tree pages exceed {} data pages",
                self.data_pages
            )));
        }
        for (label, tree) in [
            ("adjacency tree", &self.adjacency_tree),
            ("facility tree", &self.facility_tree),
            ("edge index", &self.edge_index),
        ] {
            if tree.num_entries > 0 && (tree.root.raw() == 0 || tree.root.raw() > self.data_pages) {
                return Err(StorageError::InvalidHeader(format!(
                    "{label} roots at {} outside the {} data pages",
                    tree.root, self.data_pages
                )));
            }
        }
        Ok(())
    }

    /// Renders the header as indented JSON: the debugging sidecar companion
    /// to the binary page-0 encoding (see [`crate::MCNStore::meta_json`]).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a header from its JSON sidecar representation.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidHeader`] when the text is not valid
    /// JSON for this type or fails the same shape checks as
    /// [`StorageMeta::decode`].
    pub fn from_json(text: &str) -> Result<Self, StorageError> {
        let meta: Self = serde::json::from_str(text)
            .map_err(|e| StorageError::InvalidHeader(format!("sidecar JSON: {e}")))?;
        meta.validate_shape()?;
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StorageMeta {
        StorageMeta {
            num_cost_types: 4,
            num_nodes: 1000,
            num_edges: 1500,
            num_facilities: 200,
            adjacency_tree: StaticBTree {
                root: PageId::new(10),
                num_pages: 5,
                num_entries: 1000,
            },
            facility_tree: StaticBTree {
                root: PageId::new(20),
                num_pages: 2,
                num_entries: 200,
            },
            edge_index: StaticBTree {
                root: PageId::new(30),
                num_pages: 7,
                num_entries: 1500,
            },
            adjacency_file_pages: 40,
            facility_file_pages: 3,
            data_pages: 57,
        }
    }

    #[test]
    fn header_roundtrip() {
        let meta = sample();
        let page = meta.encode();
        let decoded = StorageMeta::decode(&page).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let page = Page::zeroed();
        assert!(matches!(
            StorageMeta::decode(&page),
            Err(StorageError::InvalidHeader(_))
        ));
    }

    #[test]
    fn truncated_image_is_rejected_not_panicking() {
        let page = sample().encode();
        for cut in [0, 1, 4, HEADER_SIZE - 1] {
            assert_eq!(
                StorageMeta::decode_bytes(&page.bytes()[..cut]),
                Err(StorageError::TruncatedHeader {
                    required: HEADER_SIZE,
                    actual: cut,
                }),
                "cut at {cut} bytes"
            );
        }
        // Exactly the header length is fine even without page padding.
        assert_eq!(
            StorageMeta::decode_bytes(&page.bytes()[..HEADER_SIZE]).unwrap(),
            sample()
        );
    }

    #[test]
    fn wrong_endian_image_is_rejected() {
        // A writer with the opposite endianness would store every u32
        // byte-swapped; the magic check catches that before any field is
        // trusted.
        let page = sample().encode();
        let mut swapped = Page::zeroed();
        for (i, chunk) in page.bytes().chunks(4).enumerate() {
            let word = u32::from_le_bytes(chunk.try_into().unwrap()).swap_bytes();
            swapped.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        assert!(matches!(
            StorageMeta::decode(&swapped),
            Err(StorageError::InvalidHeader(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn inconsistent_page_accounting_is_rejected() {
        // Files + trees claiming more pages than the store records.
        let mut meta = sample();
        meta.data_pages = 10;
        assert!(matches!(
            StorageMeta::decode(&meta.encode()),
            Err(StorageError::InvalidHeader(msg)) if msg.contains("data pages")
        ));

        // A non-empty tree rooted at the header page (or past the end).
        let mut meta = sample();
        meta.adjacency_tree.root = PageId::new(0);
        assert!(matches!(
            StorageMeta::decode(&meta.encode()),
            Err(StorageError::InvalidHeader(msg)) if msg.contains("roots")
        ));
        let mut meta = sample();
        meta.edge_index.root = PageId::new(meta.data_pages + 1);
        assert!(matches!(
            StorageMeta::decode(&meta.encode()),
            Err(StorageError::InvalidHeader(_))
        ));
    }

    #[test]
    fn json_sidecar_roundtrips_and_validates() {
        let meta = sample();
        let json = meta.to_json();
        assert!(json.contains("\"num_nodes\": 1000"));
        assert_eq!(StorageMeta::from_json(&json).unwrap(), meta);
        // The sidecar parser applies the same shape checks as the binary
        // decoder.
        let broken = json.replace("\"data_pages\": 57", "\"data_pages\": 3");
        assert!(matches!(
            StorageMeta::from_json(&broken),
            Err(StorageError::InvalidHeader(_))
        ));
        assert!(matches!(
            StorageMeta::from_json("{not json"),
            Err(StorageError::InvalidHeader(_))
        ));
    }
}
