//! Command-line experiment runner.
//!
//! Reproduces the paper's Section VI figures as text tables:
//!
//! ```text
//! experiments all                    # every figure at the default 1/50 scale
//! experiments sky-p topk-k           # selected figures
//! experiments all --scale 10         # closer to the paper's full size
//! experiments all --queries 50       # more query locations per data point
//! experiments all --latency-ms 10    # charge 10 ms per physical page read
//! experiments all --out results/     # persist each table as JSON
//! experiments all --check results/   # re-parse persisted tables, no re-run
//! ```
//!
//! `--out DIR` writes one `<id>.json` per selected experiment and verifies
//! the write by reading the file back and comparing the parsed table with
//! the in-memory one. `--check DIR` loads previously written tables without
//! re-running anything, verifies that re-serializing the parsed value
//! reproduces the file byte-for-byte (the serializer is deterministic, so
//! this proves a lossless round-trip across the process restart), and
//! renders them. Both exit non-zero on any write, parse or mismatch
//! failure.

use mcn_bench::{
    render_table, render_throughput_table, run_throughput, Experiment, ExperimentConfig,
    ExperimentTable, ThroughputConfig, ThroughputTable, THROUGHPUT_ID,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return ExitCode::SUCCESS;
    }

    let mut config = ExperimentConfig::default();
    let mut throughput_config = ThroughputConfig::default();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut with_throughput = false;
    let mut run_all = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut check_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "all" => run_all = true,
            id if id == THROUGHPUT_ID => with_throughput = true,
            "--scale" => {
                config.scale = expect_value(&args, &mut i, "--scale");
            }
            "--queries" => {
                config.queries = Some(expect_value(&args, &mut i, "--queries"));
            }
            "--latency-ms" => {
                let ms: f64 = expect_value(&args, &mut i, "--latency-ms");
                config.latency = ms / 1000.0;
            }
            "--seed" => {
                config.seed = expect_value(&args, &mut i, "--seed");
            }
            "--batch" => {
                throughput_config.batch = expect_value(&args, &mut i, "--batch");
            }
            "--workers" => {
                let list: String = expect_value(&args, &mut i, "--workers");
                match parse_worker_list(&list) {
                    Some(workers) => throughput_config.workers = workers,
                    None => {
                        eprintln!("--workers expects a comma-separated list, e.g. 1,2,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--read-latency-us" => {
                throughput_config.read_latency_us =
                    expect_value(&args, &mut i, "--read-latency-us");
            }
            "--out" => {
                out_dir = Some(expect_value(&args, &mut i, "--out"));
            }
            "--check" => {
                check_dir = Some(expect_value(&args, &mut i, "--check"));
            }
            other => match Experiment::from_id(other) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment or flag: {other}");
                    print_usage();
                    return ExitCode::from(2);
                }
            },
        }
        i += 1;
    }
    if run_all {
        selected = Experiment::all().to_vec();
        with_throughput = true;
    }
    if selected.is_empty() && !with_throughput {
        eprintln!("nothing to run");
        print_usage();
        return ExitCode::from(2);
    }
    throughput_config.scale = config.scale;
    throughput_config.seed = config.seed;

    if out_dir.is_some() && check_dir.is_some() {
        eprintln!("--out and --check are mutually exclusive (write first, then check)");
        return ExitCode::from(2);
    }
    if let Some(dir) = check_dir {
        return check_tables(&dir, &selected, with_throughput);
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "# MCN preference-query experiments (scale 1/{}, {} ms per physical read, seed {})",
        config.scale,
        config.latency * 1000.0,
        config.seed
    );
    println!(
        "# Paper defaults scaled: {} nodes, {} facilities, d = {}, anti-correlated, {} queries/point\n",
        config.base_spec().nodes,
        config.base_spec().facilities,
        config.base_spec().cost_types,
        config.base_spec().queries
    );
    for experiment in selected {
        let table = experiment.run(&config);
        println!("{}", render_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_table(dir, &table) {
                eprintln!("failed to persist table {}: {e}", table.id);
                return ExitCode::FAILURE;
            }
        }
    }
    if with_throughput {
        let table = run_throughput(&throughput_config);
        println!("{}", render_throughput_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_throughput_table(dir, &table) {
                eprintln!("failed to persist table {THROUGHPUT_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses a `--workers` list like `1,2,4` (every entry ≥ 1).
fn parse_worker_list(list: &str) -> Option<Vec<usize>> {
    let workers: Option<Vec<usize>> = list
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&w| w >= 1))
        .collect();
    workers.filter(|w| !w.is_empty())
}

/// Writes a report to `DIR/<id>.json` and proves the write lossless by
/// reading the file back and comparing the re-parsed value. Shared by the
/// figure tables and the throughput table, which only differ in their
/// (de)serializers.
fn persist_report<T: PartialEq>(
    dir: &Path,
    id: &str,
    table: &T,
    to_json: impl Fn(&T) -> String,
    from_json: impl Fn(&str) -> Result<T, String>,
) -> Result<(), String> {
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, to_json(table)).map_err(|e| format!("write {}: {e}", path.display()))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read back {}: {e}", path.display()))?;
    let reparsed = from_json(&text).map_err(|e| format!("re-parse {}: {e}", path.display()))?;
    if &reparsed != table {
        return Err(format!(
            "round-trip mismatch: {} differs from the in-memory table",
            path.display()
        ));
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Writes `table` to `DIR/<id>.json` with read-back verification.
fn persist_table(dir: &Path, table: &ExperimentTable) -> Result<(), String> {
    persist_report(
        dir,
        &table.id,
        table,
        ExperimentTable::to_json,
        ExperimentTable::from_json,
    )
}

/// Writes the throughput `table` to `DIR/throughput.json` with the same
/// read-back verification as the figure tables.
fn persist_throughput_table(dir: &Path, table: &ThroughputTable) -> Result<(), String> {
    persist_report(
        dir,
        THROUGHPUT_ID,
        table,
        ThroughputTable::to_json,
        ThroughputTable::from_json,
    )
}

/// Loads `DIR/<id>.json`, verifying that the stored id matches and that
/// re-serializing the parsed value reproduces the file byte-for-byte (the
/// serializer is deterministic, so byte equality across processes proves a
/// lossless round-trip).
fn load_report<T>(
    dir: &Path,
    expected_id: &str,
    to_json: impl Fn(&T) -> String,
    from_json: impl Fn(&str) -> Result<T, String>,
    id_of: impl Fn(&T) -> &str,
) -> Result<T, String> {
    let path = dir.join(format!("{expected_id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let table = from_json(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    if id_of(&table) != expected_id {
        return Err(format!(
            "{} holds table `{}`, expected `{expected_id}`",
            path.display(),
            id_of(&table)
        ));
    }
    if to_json(&table) != text {
        return Err(format!(
            "{}: re-serializing the parsed table does not reproduce the file",
            path.display()
        ));
    }
    Ok(table)
}

/// Loads each selected table from `DIR/<id>.json`, verifies the lossless
/// round-trip and renders it.
fn check_tables(dir: &Path, selected: &[Experiment], with_throughput: bool) -> ExitCode {
    let mut failures = 0u32;
    for experiment in selected {
        match load_report(
            dir,
            experiment.id(),
            ExperimentTable::to_json,
            ExperimentTable::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_throughput {
        match load_report(
            dir,
            THROUGHPUT_ID,
            ThroughputTable::to_json,
            ThroughputTable::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_throughput_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} table(s) failed the check");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn expect_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn print_usage() {
    eprintln!(
        "usage: experiments [all | <ids>...] [--scale N] [--queries N] [--latency-ms MS] [--seed S]\n\
         \x20                [--batch N] [--workers LIST] [--out DIR] [--check DIR]\n\
         experiment ids: {}, {THROUGHPUT_ID}\n\
         --out DIR      run the experiments, persist each table to DIR/<id>.json and\n\
         \x20              verify the written file re-parses to the in-memory table\n\
         --check DIR    skip running; load DIR/<id>.json for each selected experiment,\n\
         \x20              verify a lossless round-trip and render the stored tables\n\
         --batch N      number of queries in the {THROUGHPUT_ID} batch (default 32)\n\
         --workers LIST worker counts swept by {THROUGHPUT_ID}, e.g. 1,2,4 (default)\n\
         --read-latency-us N  blocking latency per physical read in the {THROUGHPUT_ID}\n\
         \x20              experiment (default 50; 0 = RAM-speed reads)",
        Experiment::all()
            .iter()
            .map(|e| e.id())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
