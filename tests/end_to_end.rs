//! Cross-crate integration tests: generated workloads → paged store → LSA /
//! CEA / baseline queries, validated against independent oracles built from
//! the in-memory graph and the generic skyline / top-k substrates.

use mcn::core::prelude::*;
use mcn::expansion::oracle;
use mcn::gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn::graph::{CostVec, FacilityId, NetworkLocation};
use mcn::storage::{BufferConfig, MCNStore};
use mcn::topk::{no_random_access, SortedLists, WeightedSum as ListWeightedSum};
use std::sync::Arc;

fn workload(
    seed: u64,
    distribution: CostDistribution,
    d: usize,
) -> (Arc<MCNStore>, mcn::gen::Workload) {
    let spec = WorkloadSpec {
        nodes: 1600,
        facilities: 500,
        cost_types: d,
        distribution,
        clusters: 5,
        queries: 3,
        seed,
    };
    let w = generate_workload(&spec);
    let store =
        Arc::new(MCNStore::build_in_memory(&w.graph, BufferConfig::Fraction(0.01)).unwrap());
    (store, w)
}

fn oracle_skyline(w: &mcn::gen::Workload, q: NetworkLocation) -> Vec<FacilityId> {
    let costs = oracle::facility_cost_vectors(&w.graph, q);
    let items: Vec<(FacilityId, CostVec)> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| (FacilityId::from(i), *c))
        .collect();
    let mut ids: Vec<FacilityId> = mcn::skyline::block_nested_loops(&items)
        .into_iter()
        .map(|i| items[i].0)
        .collect();
    ids.sort();
    ids
}

#[test]
fn skyline_agrees_with_oracle_across_distributions() {
    for (seed, dist) in [
        (1, CostDistribution::AntiCorrelated),
        (2, CostDistribution::Independent),
        (3, CostDistribution::Correlated),
    ] {
        let (store, w) = workload(seed, dist, 3);
        for &q in &w.queries {
            let expected = oracle_skyline(&w, q);
            for algo in [Algorithm::Lsa, Algorithm::Cea] {
                let mut got: Vec<FacilityId> = skyline_query(&store, q, algo)
                    .facilities
                    .iter()
                    .map(|f| f.facility)
                    .collect();
                got.sort();
                assert_eq!(got, expected, "{dist:?} seed {seed} {}", algo.name());
            }
        }
    }
}

#[test]
fn baseline_and_local_search_return_identical_skylines() {
    let (store, w) = workload(11, CostDistribution::AntiCorrelated, 4);
    for &q in &w.queries {
        let mut base: Vec<FacilityId> = baseline_skyline(&store, q)
            .facilities
            .iter()
            .map(|f| f.facility)
            .collect();
        base.sort();
        let mut cea: Vec<FacilityId> = skyline_query(&store, q, Algorithm::Cea)
            .facilities
            .iter()
            .map(|f| f.facility)
            .collect();
        cea.sort();
        assert_eq!(base, cea);
    }
}

#[test]
fn topk_matches_brute_force_and_nra_substrate() {
    let (store, w) = workload(21, CostDistribution::Independent, 3);
    let q = w.queries[0];
    let weights = vec![0.5, 0.3, 0.2];
    let f = WeightedSum::new(weights.clone());
    let k = 8;

    // Oracle 1: in-memory brute force over exact cost vectors.
    let costs = oracle::facility_cost_vectors(&w.graph, q);
    let mut brute: Vec<(usize, f64)> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| (i, f.score(c)))
        .collect();
    brute.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Oracle 2: the generic NRA algorithm over the same cost matrix — the MCN
    // top-k algorithm is structurally an NRA over expansion streams, so the
    // two must agree.
    let matrix: Vec<Vec<f64>> = costs.iter().map(|c| c.as_slice().to_vec()).collect();
    let lists = SortedLists::from_matrix(&matrix);
    let (nra, _) = no_random_access(&lists, &ListWeightedSum::new(weights), k);

    for algo in [Algorithm::Lsa, Algorithm::Cea] {
        let got = topk_query(&store, q, f.clone(), k, algo);
        assert_eq!(got.entries.len(), k);
        for (i, entry) in got.entries.iter().enumerate() {
            assert!(
                (entry.score - brute[i].1).abs() < 1e-9,
                "{}: rank {i} score {} vs brute {}",
                algo.name(),
                entry.score,
                brute[i].1
            );
            assert!((entry.score - nra[i].1).abs() < 1e-9);
        }
    }
}

#[test]
fn skyline_contains_every_top1_winner() {
    // The paper's connection between the two queries: the skyline contains all
    // facilities that win a top-1 query under some monotone aggregate.
    let (store, w) = workload(31, CostDistribution::AntiCorrelated, 2);
    let q = w.queries[0];
    let skyline: Vec<FacilityId> = skyline_query(&store, q, Algorithm::Cea)
        .facilities
        .iter()
        .map(|f| f.facility)
        .collect();
    for weights in [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.9, 0.1], [0.2, 0.8]] {
        let top = topk_query(
            &store,
            q,
            WeightedSum::new(weights.to_vec()),
            1,
            Algorithm::Cea,
        );
        let winner = top.entries[0].facility;
        assert!(
            skyline.contains(&winner),
            "top-1 winner {winner} for weights {weights:?} missing from the skyline"
        );
    }
}

#[test]
fn progressive_and_incremental_apis_are_consistent_with_batch() {
    let (store, w) = workload(41, CostDistribution::AntiCorrelated, 3);
    let q = w.queries[1];

    let batch = skyline_query(&store, q, Algorithm::Cea);
    let streamed: Vec<_> = mcn::core::SkylineSearch::cea(store.clone(), q).collect();
    assert_eq!(batch.facilities, streamed);

    let f = WeightedSum::uniform(3);
    let batch_top = topk_query(&store, q, f.clone(), 10, Algorithm::Lsa);
    let incremental: Vec<_> = TopKIter::lsa(store.clone(), q, f).take(10).collect();
    assert_eq!(batch_top.entries.len(), incremental.len());
    for (a, b) in batch_top.entries.iter().zip(&incremental) {
        assert!((a.score - b.score).abs() < 1e-9);
    }
}

#[test]
fn cea_io_advantage_holds_on_generated_workloads() {
    let (store, w) = workload(51, CostDistribution::AntiCorrelated, 4);
    let mut lsa_reads = 0u64;
    let mut cea_reads = 0u64;
    for &q in &w.queries {
        store.buffer().clear();
        lsa_reads += skyline_query(&store, q, Algorithm::Lsa)
            .stats
            .io
            .buffer_misses;
        store.buffer().clear();
        cea_reads += skyline_query(&store, q, Algorithm::Cea)
            .stats
            .io
            .buffer_misses;
    }
    assert!(
        cea_reads < lsa_reads,
        "CEA should read fewer pages: CEA {cea_reads} vs LSA {lsa_reads}"
    );
}

#[test]
fn pareto_paths_bound_facility_costs() {
    // The component-wise minimum of the Pareto path set to a facility's edge
    // end-node lower-bounds the facility's cost vector (path skyline vs
    // facility skyline sanity link between mcn-mcpp and mcn-core).
    let (store, w) = workload(61, CostDistribution::Independent, 2);
    let q = w.queries[0];
    let q_node = match q {
        NetworkLocation::Node(n) => n,
        _ => unreachable!("generated queries are node based"),
    };
    let result = skyline_query(&store, q, Algorithm::Cea);
    for member in result.facilities.iter().take(3) {
        let edge = w.graph.facility(member.facility).edge;
        let end = w.graph.edge(edge).source;
        let paths = mcn::mcpp::pareto_paths(&w.graph, q_node, end);
        if let Some(mins) = mcn::mcpp::componentwise_minimum(&paths) {
            for i in 0..2 {
                assert!(
                    mins[i] <= member.costs[i] + w.graph.edge(edge).costs[i] + 1e-9,
                    "path skyline minimum exceeds facility cost"
                );
            }
        }
    }
}
