//! The `throughput` experiment: multi-query QPS vs. worker count.
//!
//! This experiment goes beyond the paper's single-query evaluation: it pushes
//! a fixed batch of mixed skyline/top-k queries through
//! [`mcn_engine::QueryEngine`] at increasing worker counts over one shared
//! store, and reports wall-clock QPS, the speedup over the serial run, and
//! the aggregate I/O counters from the striped buffer pool.
//!
//! Two invariants are *asserted* on every run (not just reported):
//!
//! * every worker count produces byte-identical per-query results
//!   (fingerprint comparison against the serial run), and
//! * total logical page reads stay within 1 % of the serial run (they are in
//!   fact exactly equal — logical reads are a pure function of the queries).

use crate::report::json_safe;
use mcn_engine::{QueryEngine, QueryRequest};
use mcn_gen::{generate_workload, WorkloadSpec};
use mcn_storage::{BufferConfig, DiskManager, InMemoryDisk, MCNStore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of the throughput experiment in the `experiments` binary and
/// its report file name (`<id>.json`).
pub const THROUGHPUT_ID: &str = "throughput";

/// Configuration of a throughput run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Scale-down divider applied to the paper's default workload.
    pub scale: usize,
    /// Number of queries in the batch.
    pub batch: usize,
    /// Worker counts to sweep (the first entry is the speedup baseline;
    /// include 1 to compare against strictly serial execution).
    pub workers: Vec<usize>,
    /// Buffer size as a fraction of the store's data pages.
    pub buffer: f64,
    /// `k` used for the top-k members of the batch.
    pub k: usize,
    /// Simulated latency per physical page read, in microseconds. Non-zero
    /// values make every physical read *block* for that long (see
    /// [`InMemoryDisk::with_read_latency`]), turning the paper's charged I/O
    /// model into measurable wall-clock time — which is what lets the worker
    /// pool demonstrate QPS scaling by overlapping I/O waits, including on
    /// machines with few cores.
    pub read_latency_us: u64,
    /// Master seed for the workload and the per-query weights.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            scale: 50,
            batch: 32,
            workers: vec![1, 2, 4],
            buffer: 0.01,
            k: 4,
            read_latency_us: 50,
            seed: 2010,
        }
    }
}

/// One row of the throughput table: the batch at one worker count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Worker count of this row.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries per second of wall-clock time.
    pub qps: f64,
    /// QPS relative to the first (baseline) row.
    pub speedup: f64,
    /// Total logical page requests over the batch.
    pub logical_reads: u64,
    /// Total physical page reads over the batch.
    pub physical_reads: u64,
    /// Aggregate buffer hit ratio over the batch.
    pub hit_ratio: f64,
    /// Median per-query latency (claim → completion), in milliseconds,
    /// from the engine's deterministic log2 histogram.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile per-query latency (ms).
    pub p99_ms: f64,
}

/// The persisted throughput report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputTable {
    /// Always [`THROUGHPUT_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: ThroughputConfig,
    /// Queries in the batch (mirrors `config.batch` after generation).
    pub queries: usize,
    /// One row per swept worker count.
    pub rows: Vec<ThroughputRow>,
}

impl ThroughputTable {
    /// Serializes the table as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a table from its JSON report representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Builds the mixed request batch for a workload: round-robin over skyline /
/// batch top-k / incremental top-k, alternating LSA and CEA, with seeded
/// random weights. Deterministic in `config.seed`.
pub fn build_request_batch(
    spec: &WorkloadSpec,
    queries: &[mcn_graph::NetworkLocation],
    config: &ThroughputConfig,
) -> Vec<QueryRequest> {
    crate::requests::mixed_request_batch(
        queries,
        spec.cost_types,
        config.batch,
        config.seed ^ 0x0051_C0DE,
        |i, location, weights, algorithm| match i % 3 {
            0 => QueryRequest::Skyline {
                location,
                algorithm,
            },
            1 => QueryRequest::TopK {
                location,
                weights,
                k: config.k,
                algorithm,
            },
            _ => QueryRequest::TopKIncremental {
                location,
                weights,
                take: config.k,
                algorithm,
            },
        },
    )
}

/// Runs the throughput sweep described by `config`.
///
/// # Panics
/// Panics if any worker count produces results differing from the baseline
/// run, or if its total logical reads deviate by more than 1 % — either
/// would mean the concurrent engine is not serially equivalent.
pub fn run_throughput(config: &ThroughputConfig) -> ThroughputTable {
    assert!(!config.workers.is_empty(), "no worker counts to sweep");
    let mut spec = WorkloadSpec::paper_scaled(config.scale);
    spec.seed = config.seed;
    let workload = generate_workload(&spec);
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::with_read_latency(
        Duration::from_micros(config.read_latency_us),
    ));
    let store = Arc::new(
        MCNStore::build_on(&workload.graph, disk, BufferConfig::Fraction(config.buffer))
            .expect("workload store builds"),
    );
    let requests = build_request_batch(&spec, &workload.queries, config);

    let mut rows = Vec::with_capacity(config.workers.len());
    let mut baseline: Option<(Vec<String>, u64, f64)> = None;
    for &workers in &config.workers {
        // Identical starting conditions for every worker count: empty cache,
        // zeroed pool counters.
        store.buffer().clear();
        let engine = QueryEngine::new(store.clone(), workers);
        let result = engine.run_batch(&requests);
        let fingerprints: Vec<String> = result
            .outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect();
        let logical = result.stats.io.logical_reads;
        match &baseline {
            None => baseline = Some((fingerprints, logical, result.stats.qps)),
            Some((base_prints, base_logical, _)) => {
                assert_eq!(
                    base_prints, &fingerprints,
                    "worker count {workers} changed query results"
                );
                let deviation =
                    (logical as f64 - *base_logical as f64).abs() / (*base_logical as f64).max(1.0);
                assert!(
                    deviation <= 0.01,
                    "worker count {workers}: logical reads {logical} deviate {:.3}% from \
                     baseline {base_logical}",
                    deviation * 100.0
                );
            }
        }
        let base_qps = baseline.as_ref().map(|b| b.2).unwrap_or(result.stats.qps);
        rows.push(ThroughputRow {
            workers,
            wall_seconds: json_safe(result.stats.wall.as_secs_f64()),
            qps: json_safe(result.stats.qps),
            speedup: json_safe(if base_qps > 0.0 {
                result.stats.qps / base_qps
            } else {
                1.0
            }),
            logical_reads: logical,
            physical_reads: result.stats.io.physical_reads,
            hit_ratio: json_safe(result.stats.io.hit_ratio()),
            p50_ms: json_safe(result.stats.latency.p50 as f64 / 1e6),
            p95_ms: json_safe(result.stats.latency.p95 as f64 / 1e6),
            p99_ms: json_safe(result.stats.latency.p99 as f64 / 1e6),
        });
    }

    ThroughputTable {
        id: THROUGHPUT_ID.to_string(),
        title: format!(
            "Multi-query throughput — {} mixed queries, shared store, striped buffer",
            requests.len()
        ),
        config: config.clone(),
        queries: requests.len(),
        rows,
    }
}

/// Renders a throughput table in the same fixed-width style as the figure
/// tables.
pub fn render_throughput_table(table: &ThroughputTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "(batch of {} queries, buffer {:.1}%, scale 1/{}, {} µs per physical read)\n",
        table.queries,
        table.config.buffer * 100.0,
        table.config.scale,
        table.config.read_latency_us
    ));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>9} {:>14} {:>14} {:>10} {:>9} {:>9} {:>9}\n",
        "workers",
        "wall(s)",
        "QPS",
        "speedup",
        "logical reads",
        "physical reads",
        "hit ratio",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<10} {:>10.4} {:>10.1} {:>8.2}x {:>14} {:>14} {:>10.3} {:>9.3} {:>9.3} {:>9.3}\n",
            r.workers,
            r.wall_seconds,
            r.qps,
            r.speedup,
            r.logical_reads,
            r.physical_reads,
            r.hit_ratio,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ThroughputConfig {
        ThroughputConfig {
            scale: 2000,
            batch: 9,
            workers: vec![1, 2],
            read_latency_us: 0, // keep unit tests fast; the binary defaults to 50 µs
            ..Default::default()
        }
    }

    #[test]
    fn throughput_sweep_runs_and_is_consistent() {
        let config = ThroughputConfig {
            read_latency_us: 10, // exercise the blocking-read path
            ..tiny_config()
        };
        let table = run_throughput(&config);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.queries, 9);
        for row in &table.rows {
            assert!(row.qps > 0.0);
            assert!(row.logical_reads > 0);
            assert!(row.physical_reads <= row.logical_reads);
            // Percentiles come from the engine's latency histogram:
            // positive (10 µs blocking reads dominate) and ordered.
            assert!(row.p50_ms > 0.0);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
        // The in-run assertions already proved result equality; the rows
        // must also show identical logical I/O.
        assert_eq!(table.rows[0].logical_reads, table.rows[1].logical_reads);
    }

    #[test]
    fn table_round_trips_through_json() {
        let table = run_throughput(&tiny_config());
        let json = table.to_json();
        let parsed = ThroughputTable::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        // Deterministic serializer: re-serializing reproduces the bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn request_batch_is_deterministic_and_mixed() {
        let config = tiny_config();
        let mut spec = WorkloadSpec::paper_scaled(config.scale);
        spec.seed = config.seed;
        let workload = generate_workload(&spec);
        let a = build_request_batch(&spec, &workload.queries, &config);
        let b = build_request_batch(&spec, &workload.queries, &config);
        assert_eq!(a, b);
        assert!(a.iter().any(|r| r.kind() == "skyline"));
        assert!(a.iter().any(|r| r.kind() == "topk"));
        assert!(a.iter().any(|r| r.kind() == "topk-inc"));
    }

    #[test]
    fn rendered_table_mentions_workers() {
        let table = run_throughput(&tiny_config());
        let text = render_throughput_table(&table);
        assert!(text.contains("workers"));
        assert!(text.contains("QPS"));
    }
}
