//! # mcn-mcpp
//!
//! **Multi-criteria Pareto path computation** (MCPP): given a source and a
//! destination node in a multi-cost network, compute the *skyline of paths*
//! between them — every path whose cost vector is not dominated by the cost
//! vector of another path.
//!
//! This is the operations-research problem the paper contrasts with its MCN
//! skyline (Section II-D): MCPP produces a skyline of *paths* to a single,
//! given destination, whereas the MCN skyline is a skyline of *facilities*
//! reached via each cost type's own shortest path. The crate exists
//!
//! * as the classic related-work baseline (label-correcting algorithm in the
//!   style of Skriver & Andersen / Brumbaugh-Smith & Shier);
//! * to cross-validate the per-cost shortest path distances used elsewhere:
//!   the component-wise minimum over the Pareto path set equals the vector of
//!   single-criterion shortest-path distances;
//! * as the serving layer for **pruned** path-skyline queries:
//!   [`pareto_paths_prepped`] accelerates the search with the per-cost lower
//!   bounds of a `mcn-prep` [`PrepTable`](mcn_prep::PrepTable) (ParetoPrep,
//!   Shekelyan et al.), producing byte-identical skylines with a fraction of
//!   the labels; [`PathStats`] makes the reduction measurable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod label;
pub mod stats;

pub use label::{
    componentwise_minimum, pareto_paths, pareto_paths_exhaustive, pareto_paths_prepped,
    pareto_paths_with_stats, ParetoLabel, PathSkylineResult,
};
pub use stats::PathStats;

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder, NodeId};

    #[test]
    fn crate_level_smoke_test() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 5.0])).unwrap();
        b.add_edge(a, c, CostVec::from_slice(&[5.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let paths = pareto_paths(&g, a, NodeId::new(1));
        assert_eq!(paths.len(), 2);
    }
}
