//! Per-query execution statistics.

use mcn_storage::IoStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Execution statistics of one preference query.
///
/// The paper reports total processing time, which in its setting is dominated
/// by I/O (84–95 %). On the simulated disk used here, wall-clock time measures
/// only the CPU side, so the harness additionally *charges* a configurable
/// latency per physical page read (see [`QueryStats::charged_time`]) to
/// recover the paper's time axis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Name of the algorithm that produced the result (e.g. `"LSA"`, `"CEA"`).
    pub algorithm: String,
    /// Wall-clock (CPU) time spent processing the query.
    pub elapsed: Duration,
    /// I/O activity attributable to this query (difference of store snapshots).
    pub io: IoStats,
    /// Network nodes settled across all expansions.
    pub nodes_settled: usize,
    /// Total heap pushes across all expansions.
    pub heap_pushes: usize,
    /// Total heap pops across all expansions.
    pub heap_pops: usize,
    /// Facilities that entered the candidate set during the growing stage.
    pub candidates: usize,
    /// Facilities pinned (complete cost vector computed).
    pub pinned: usize,
    /// Dominance (or score-comparison) checks performed.
    pub dominance_checks: usize,
    /// Number of results returned.
    pub result_size: usize,
}

impl QueryStats {
    /// Total time charged to the query assuming `latency_per_read` seconds per
    /// physical page read on top of the measured CPU time.
    pub fn charged_time(&self, latency_per_read: f64) -> f64 {
        self.elapsed.as_secs_f64() + self.io.charged_read_time(latency_per_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_time_adds_io_model() {
        let stats = QueryStats {
            elapsed: Duration::from_millis(10),
            io: IoStats {
                physical_reads: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        // 10 ms CPU + 100 reads × 10 ms = 1.01 s.
        assert!((stats.charged_time(0.01) - 1.01).abs() < 1e-9);
    }
}
