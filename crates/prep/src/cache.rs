//! A bounded LRU cache of [`PrepTable`]s keyed by target node.

use crate::table::PrepTable;
use mcn_graph::{MultiCostGraph, NodeId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Witness lock-class id — the exact string `mcn-analyze` derives
/// (`crate::Type.field`), so observed edges diff against the static graph.
const W_INNER: &str = "prep::PrepCache.inner";

/// Counters of one [`PrepCache`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the backward scan.
    pub misses: u64,
    /// Tables evicted to respect the capacity.
    pub evictions: u64,
}

impl PrepCacheStats {
    /// Counter deltas accumulated since an earlier `snapshot` of the same
    /// cache (saturating, so a `clear()` in between yields zeros rather
    /// than wrapping).
    pub fn since(&self, snapshot: &PrepCacheStats) -> PrepCacheStats {
        PrepCacheStats {
            hits: self.hits.saturating_sub(snapshot.hits),
            misses: self.misses.saturating_sub(snapshot.misses),
            evictions: self.evictions.saturating_sub(snapshot.evictions),
        }
    }

    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publish these counters into a metrics registry under the given
    /// labels (absolute values, so re-publishing is idempotent; keep one
    /// publisher per label set when exact reconciliation matters).
    pub fn publish(&self, registry: &mcn_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        registry.counter("prep.cache.hits", labels).set(self.hits);
        registry
            .counter("prep.cache.misses", labels)
            .set(self.misses);
        registry
            .counter("prep.cache.evictions", labels)
            .set(self.evictions);
        registry
            .gauge("prep.cache.hit_ratio", labels)
            .set(self.hit_ratio());
    }
}

struct CacheInner {
    /// Target node → (table, recency generation). Tables are shared out as
    /// `Arc`s so an eviction never invalidates a query that is still using
    /// the table.
    map: HashMap<u32, (Arc<PrepTable>, u64)>,
    /// Recency index: generation → target key, least-recently-used first.
    /// A `BTreeMap` keyed by a monotonically increasing generation counter
    /// makes both a touch and an eviction O(log n) — the old `VecDeque`
    /// needed an O(n) scan per hit to relocate the key.
    recency: BTreeMap<u64, u32>,
    /// Next recency generation. Strictly increasing under the lock, so the
    /// eviction order is a pure function of the (serialized) operation
    /// sequence — exactly as deterministic as the queue it replaces.
    generation: u64,
    stats: PrepCacheStats,
}

/// Generation of a map entry not yet indexed in `recency` (a fresh insert
/// before its first touch). `generation` increments once per touch, so the
/// sentinel is unreachable as a real generation.
const NO_GEN: u64 = u64::MAX;

impl CacheInner {
    /// Marks `key` most-recently-used, assigning it a fresh generation.
    fn touch(&mut self, key: u32) {
        let gen = self.generation;
        self.generation += 1;
        if let Some((_, slot)) = self.map.get_mut(&key) {
            let prev = std::mem::replace(slot, gen);
            if prev != NO_GEN {
                self.recency.remove(&prev);
            }
        }
        self.recency.insert(gen, key);
    }
}

/// A bounded, thread-safe LRU cache of [`PrepTable`]s keyed by **target
/// node** — the unit of reuse of ParetoPrep precomputation: one backward
/// scan serves every path-skyline query towards the same target, whatever
/// the source.
///
/// Concurrent misses for the *same* target may both run the scan (the lock
/// is not held while scanning); the scan is deterministic, so both arrive
/// at identical tables and the second insert is dropped. This trades a
/// little duplicate work under a cold cache for never serialising query
/// workers behind one scan.
pub struct PrepCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

const _: () = crate::assert_send_sync::<PrepCache>();

impl PrepCache {
    /// Creates a cache holding at most `capacity` tables (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                generation: 0,
                stats: PrepCacheStats::default(),
            }),
        }
    }

    /// Maximum number of tables retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tables currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True iff no table is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> PrepCacheStats {
        self.inner.lock().stats
    }

    /// Drops every cached table and resets the counters (the "cold cache"
    /// starting condition of the `prep` experiment).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let _inner_w = mcn_witness::acquire(W_INNER);
        inner.map.clear();
        inner.recency.clear();
        inner.stats = PrepCacheStats::default();
    }

    /// Returns the cached table for `target`, if any, refreshing its
    /// recency.
    pub fn get(&self, target: NodeId) -> Option<Arc<PrepTable>> {
        let mut inner = self.inner.lock();
        let _inner_w = mcn_witness::acquire(W_INNER);
        let hit = inner.map.get(&target.raw()).map(|(t, _)| t.clone());
        match hit {
            Some(table) => {
                inner.stats.hits += 1;
                inner.touch(target.raw());
                Some(table)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a table under its target key, evicting the least-recently
    /// used entries over capacity. An existing entry for the same target is
    /// kept (scans are deterministic, so both tables are identical).
    pub fn insert(&self, table: Arc<PrepTable>) -> Arc<PrepTable> {
        let key = table.target().raw();
        let mut inner = self.inner.lock();
        let _inner_w = mcn_witness::acquire(W_INNER);
        if let Some(existing) = inner.map.get(&key).map(|(t, _)| t.clone()) {
            inner.touch(key);
            return existing;
        }
        inner.map.insert(key, (table.clone(), NO_GEN));
        inner.touch(key);
        while inner.map.len() > self.capacity {
            let victim = *inner
                .recency
                .keys()
                .next()
                .expect("over-capacity cache has an LRU entry");
            let evicted = inner.recency.remove(&victim).expect("key present");
            inner.map.remove(&evicted);
            inner.stats.evictions += 1;
        }
        table
    }

    /// The cache's main entry point: returns the table for `target`,
    /// running (and caching) the backward scan on a miss.
    pub fn get_or_build(&self, graph: &MultiCostGraph, target: NodeId) -> Arc<PrepTable> {
        if let Some(table) = self.get(target) {
            return table;
        }
        // Scan outside the lock so other targets proceed concurrently.
        let table = Arc::new(PrepTable::build(graph, target));
        self.insert(table)
    }

    /// [`PrepCache::get_or_build`] with lifecycle spans: a `prep-lookup`
    /// span around the cache probe and, on a miss, a `prep-build` span
    /// around the backward scan (the insert stays outside the span so it
    /// times the scan, not lock contention). With `obs == None` this is
    /// exactly `get_or_build`.
    pub fn get_or_build_observed(
        &self,
        graph: &MultiCostGraph,
        target: NodeId,
        obs: Option<&mcn_obs::Obs>,
        tier: &str,
        query: u64,
    ) -> Arc<PrepTable> {
        let Some(obs) = obs else {
            return self.get_or_build(graph, target);
        };
        let hit = {
            let _span = obs.span("prep-lookup", tier, query);
            self.get(target)
        };
        if let Some(table) = hit {
            return table;
        }
        let table = {
            let _span = obs.span("prep-build", tier, query);
            Arc::new(PrepTable::build(graph, target))
        };
        self.insert(table)
    }

    /// Writes every resident table to `dir` as `prep-<target>.json`, one
    /// file per table, creating the directory if needed. Returns the number
    /// of tables written. The resident set is snapshotted under the lock
    /// but all file I/O happens outside it, so queries are never serialised
    /// behind the disk.
    ///
    /// # Errors
    /// Returns a message naming the path that failed to be created or
    /// written.
    pub fn save_dir(&self, dir: &Path) -> Result<usize, String> {
        let mut tables: Vec<Arc<PrepTable>> = {
            let inner = self.inner.lock();
            let _inner_w = mcn_witness::acquire(W_INNER);
            // `recency` (a BTreeMap) iterates deterministically; every map
            // entry is indexed there from its insert-time touch.
            inner
                .recency
                .values()
                .map(|key| inner.map[key].0.clone())
                .collect()
        };
        tables.sort_by_key(|t| t.target().raw());
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create directory {}: {e}", dir.display()))?;
        for table in &tables {
            let path = dir.join(format!("prep-{}.json", table.target().raw()));
            std::fs::write(&path, table.to_json())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        Ok(tables.len())
    }

    /// Loads every `prep-<target>.json` file under `dir` (written by
    /// [`PrepCache::save_dir`]) into the cache, validating each table
    /// against `graph` — the warm-start path after a process restart.
    /// Files not matching the naming scheme are ignored; tables beyond the
    /// capacity evict LRU-first as usual. Returns the number of tables
    /// loaded.
    ///
    /// # Errors
    /// Returns a message naming the offending file when one fails to read
    /// or parse, its filename disagrees with the table's own target, or the
    /// table's shape (node count / cost types) does not match `graph`.
    pub fn load_dir(&self, graph: &MultiCostGraph, dir: &Path) -> Result<usize, String> {
        let read =
            std::fs::read_dir(dir).map_err(|e| format!("read directory {}: {e}", dir.display()))?;
        let mut files: Vec<std::path::PathBuf> = Vec::new();
        for entry in read {
            let path = entry
                .map_err(|e| format!("read directory {}: {e}", dir.display()))?
                .path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("prep-") && name.ends_with(".json") {
                files.push(path);
            }
        }
        files.sort();
        let mut loaded = 0usize;
        for path in &files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let table = PrepTable::from_json(&text)
                .map_err(|e| format!("parse {}: {e}", path.display()))?;
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let stem = name.trim_start_matches("prep-").trim_end_matches(".json");
            if stem != table.target().raw().to_string() {
                return Err(format!(
                    "{}: file is named for target {stem} but holds a table for target {}",
                    path.display(),
                    table.target().raw()
                ));
            }
            if table.num_nodes() != graph.num_nodes()
                || table.cost_types() != graph.num_cost_types()
            {
                return Err(format!(
                    "{}: table shape ({} nodes, d = {}) does not match the graph \
                     ({} nodes, d = {})",
                    path.display(),
                    table.num_nodes(),
                    table.cost_types(),
                    graph.num_nodes(),
                    graph.num_cost_types()
                ));
            }
            self.insert(Arc::new(table));
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder};
    use std::collections::VecDeque;

    fn line(n: u32) -> MultiCostGraph {
        let mut b = GraphBuilder::new(2);
        let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(i as f64, 0.0)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], CostVec::from_slice(&[1.0, 2.0]))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn get_or_build_caches_per_target() {
        let g = line(6);
        let cache = PrepCache::new(4);
        let a = cache.get_or_build(&g, NodeId::new(3));
        let b = cache.get_or_build(&g, NodeId::new(3));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let g = line(8);
        let cache = PrepCache::new(2);
        cache.get_or_build(&g, NodeId::new(0));
        cache.get_or_build(&g, NodeId::new(1));
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_build(&g, NodeId::new(0));
        cache.get_or_build(&g, NodeId::new(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // 0 survived, 1 was evicted.
        assert!(cache.get(NodeId::new(0)).is_some());
        assert!(cache.get(NodeId::new(1)).is_none());
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let g = line(4);
        let cache = PrepCache::new(2);
        cache.get_or_build(&g, NodeId::new(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), PrepCacheStats::default());
    }

    #[test]
    fn duplicate_insert_keeps_the_first_table() {
        let g = line(4);
        let cache = PrepCache::new(2);
        let first = cache.insert(Arc::new(PrepTable::build(&g, NodeId::new(2))));
        let second = cache.insert(Arc::new(PrepTable::build(&g, NodeId::new(2))));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    /// Single-threaded hammer: thousands of seeded get/insert operations
    /// checked step-by-step against a trivial `VecDeque` reference model of
    /// LRU recency. The generation-counter index must agree with the model
    /// on every hit, miss, eviction count and final resident set — i.e. the
    /// O(log n) rewrite is observationally identical to the O(n) queue it
    /// replaced.
    #[test]
    fn seeded_churn_matches_reference_lru_model() {
        const TARGETS: u64 = 9;
        const OPS: u64 = 4000;
        let g = line(16);
        let cache = PrepCache::new(3);
        let mut model: VecDeque<u32> = VecDeque::new();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        let mut lcg = 0xDEAD_BEEFu64;
        for _ in 0..OPS {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let raw = ((lcg >> 33) % TARGETS) as u32;
            let table = cache.get_or_build(&g, NodeId::new(raw));
            assert_eq!(table.target(), NodeId::new(raw));
            // Reference model: hit moves to the back, miss inserts at the
            // back and evicts the front beyond capacity.
            if let Some(pos) = model.iter().position(|&k| k == raw) {
                model.remove(pos);
                model.push_back(raw);
                hits += 1;
            } else {
                model.push_back(raw);
                misses += 1;
                if model.len() > cache.capacity() {
                    model.pop_front();
                    evictions += 1;
                }
            }
            // The resident set must match the model exactly at every step
            // (get() on a non-resident key would perturb the counters, so
            // compare through len + membership of the model's keys).
            assert_eq!(cache.len(), model.len());
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, hits);
        assert_eq!(stats.misses, misses);
        assert_eq!(stats.evictions, evictions);
        // Final resident set and recency order agree: inserting one more
        // fresh target must evict exactly the model's LRU front.
        let fresh = NodeId::new(TARGETS as u32);
        cache.get_or_build(&g, fresh);
        let victim = model.pop_front().unwrap();
        assert!(
            cache.get(NodeId::new(victim)).is_none(),
            "model LRU front {victim} should have been evicted"
        );
        for &kept in model.iter() {
            assert!(cache.get(NodeId::new(kept)).is_some());
        }
    }

    #[test]
    fn save_and_load_dir_round_trip_the_resident_tables() {
        let g = line(10);
        let cache = PrepCache::new(4);
        for t in [2u32, 5, 7] {
            cache.get_or_build(&g, NodeId::new(t));
        }
        let dir = std::env::temp_dir().join(format!("mcn-prepcache-rt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(cache.save_dir(&dir).unwrap(), 3);

        // A fresh cache warm-started from the directory holds identical
        // tables — the restart survival path.
        let warm = PrepCache::new(4);
        assert_eq!(warm.load_dir(&g, &dir).unwrap(), 3);
        assert_eq!(warm.len(), 3);
        for t in [2u32, 5, 7] {
            let loaded = warm
                .get(NodeId::new(t))
                .expect("table survived the restart");
            let original = cache.get(NodeId::new(t)).unwrap();
            assert_eq!(*loaded, *original);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_reports_corrupted_and_mismatched_files() {
        let g = line(8);
        let cache = PrepCache::new(4);
        cache.get_or_build(&g, NodeId::new(3));
        let dir = std::env::temp_dir().join(format!("mcn-prepcache-bad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        cache.save_dir(&dir).unwrap();

        // Truncated JSON fails, naming the offending file.
        let bad = dir.join("prep-4.json");
        std::fs::write(&bad, "{ \"target\": ").unwrap();
        let err = PrepCache::new(4).load_dir(&g, &dir).unwrap_err();
        assert!(
            err.contains("prep-4.json"),
            "error should name the file: {err}"
        );

        // A table built for another graph shape is rejected.
        std::fs::remove_file(&bad).unwrap();
        let other = line(20);
        let foreign = PrepTable::build(&other, NodeId::new(5));
        std::fs::write(dir.join("prep-5.json"), foreign.to_json()).unwrap();
        let err = PrepCache::new(4).load_dir(&g, &dir).unwrap_err();
        assert!(err.contains("does not match the graph"), "{err}");

        // A valid table under a filename for a different target is rejected
        // (silent key aliasing would poison every query to that target).
        std::fs::remove_file(dir.join("prep-5.json")).unwrap();
        let real = PrepTable::build(&g, NodeId::new(2));
        std::fs::write(dir.join("prep-6.json"), real.to_json()).unwrap();
        let err = PrepCache::new(4).load_dir(&g, &dir).unwrap_err();
        assert!(err.contains("named for target"), "{err}");

        // Files outside the naming scheme are ignored, not errors.
        std::fs::remove_file(dir.join("prep-6.json")).unwrap();
        std::fs::write(dir.join("README.txt"), "not a table").unwrap();
        assert_eq!(PrepCache::new(4).load_dir(&g, &dir).unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_guards_the_zero_sample_case() {
        assert_eq!(PrepCacheStats::default().hit_ratio(), 0.0);
        let misses_only = PrepCacheStats {
            hits: 0,
            misses: 5,
            evictions: 0,
        };
        assert_eq!(misses_only.hit_ratio(), 0.0);
    }

    #[test]
    fn publish_mirrors_counters_into_registry() {
        let g = line(6);
        let cache = PrepCache::new(1);
        cache.get_or_build(&g, NodeId::new(1));
        cache.get_or_build(&g, NodeId::new(1));
        cache.get_or_build(&g, NodeId::new(2));
        let registry = mcn_obs::MetricsRegistry::new();
        cache.stats().publish(&registry, &[]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("prep.cache.hits", &[]), Some(1));
        assert_eq!(snap.counter_value("prep.cache.misses", &[]), Some(2));
        assert_eq!(snap.counter_value("prep.cache.evictions", &[]), Some(1));
        assert!(
            (snap.gauge_value("prep.cache.hit_ratio", &[]).unwrap() - cache.stats().hit_ratio())
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn observed_get_or_build_records_lookup_and_build_spans() {
        let g = line(6);
        let cache = PrepCache::new(2);
        let clock = Arc::new(mcn_obs::ManualClock::with_step(0, 100));
        let obs = mcn_obs::Obs::with_clock(clock);
        obs.set_tracing(true);

        // Miss: lookup + build spans; hit: lookup span only.
        let a = cache.get_or_build_observed(&g, NodeId::new(3), Some(&obs), "path-skyline", 7);
        let b = cache.get_or_build_observed(&g, NodeId::new(3), Some(&obs), "path-skyline", 8);
        assert!(Arc::ptr_eq(&a, &b));
        let events = obs.tracer().drain();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["prep-lookup", "prep-build", "prep-lookup"]);
        assert!(events.iter().all(|e| e.tier == "path-skyline"));
        assert_eq!(events[0].query, 7);
        assert_eq!(events[2].query, 8);
        // The stepping clock gives every span an exact 100 ns duration.
        assert!(events.iter().all(|e| e.dur_ns == 100));

        // Without a context the observed variant is plain get_or_build.
        let c = cache.get_or_build_observed(&g, NodeId::new(3), None, "path-skyline", 9);
        assert!(Arc::ptr_eq(&a, &c));
        assert!(obs.tracer().is_empty());
    }

    #[test]
    fn stats_since_subtracts_a_snapshot() {
        let g = line(6);
        let cache = PrepCache::new(2);
        cache.get_or_build(&g, NodeId::new(1));
        let snap = cache.stats();
        cache.get_or_build(&g, NodeId::new(1));
        cache.get_or_build(&g, NodeId::new(2));
        cache.get_or_build(&g, NodeId::new(3));
        let delta = cache.stats().since(&snap);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 2);
        assert_eq!(delta.evictions, 1);
        // A clear() between snapshots saturates to zero instead of wrapping.
        cache.clear();
        let wrapped = cache.stats().since(&snap);
        assert_eq!(wrapped, PrepCacheStats::default());
    }

    /// Hammers one cache from many threads with overlapping targets so
    /// inserts and evictions race constantly (capacity 3, 8 live targets),
    /// then checks the three invariants that must survive the churn: the
    /// size bound always holds, the counters reconcile with the work done,
    /// and every table handed out or retained is byte-identical to a fresh
    /// single-threaded build (the scan is deterministic, so racing builders
    /// must be indistinguishable).
    #[test]
    fn concurrent_churn_keeps_cache_bounded_and_deterministic() {
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 200;
        const TARGETS: u64 = 8;
        let g = line(12);
        let cache = PrepCache::new(3);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (g, cache) = (&g, &cache);
                s.spawn(move || {
                    // Per-thread LCG: each thread walks the target set in a
                    // different order, keeping hits, misses and evictions
                    // interleaved rather than phased.
                    let mut lcg = t * 2654435761 + 1;
                    for _ in 0..ROUNDS {
                        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let target = NodeId::new(((lcg >> 33) % TARGETS) as u32);
                        let table = cache.get_or_build(g, target);
                        assert_eq!(table.target(), target);
                        // The size bound must hold at every observable
                        // moment, not just after the dust settles.
                        assert!(cache.len() <= cache.capacity());
                    }
                });
            }
        });

        // Counters reconcile: every lookup was a hit or a miss, and the
        // cache never retained more tables than misses built minus those
        // evicted (duplicate inserts from racing builders are dropped).
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, THREADS * ROUNDS);
        assert!(stats.misses >= TARGETS, "each target missed at least once");
        assert!(cache.len() as u64 + stats.evictions <= stats.misses);
        assert!(cache.len() <= cache.capacity());

        // Whatever survived the churn is exactly what a quiet,
        // single-threaded build produces.
        for raw in 0..TARGETS as u32 {
            if let Some(cached) = cache.get(NodeId::new(raw)) {
                assert_eq!(*cached, PrepTable::build(&g, NodeId::new(raw)));
            }
        }
    }
}
