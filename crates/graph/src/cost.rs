//! Fixed-capacity cost vectors.
//!
//! Every edge of an MCN carries `d` non-negative costs, one per *cost type*
//! (Euclidean length, driving time, walking time, toll fee, …). The paper
//! evaluates `d ∈ [2, 5]`; we support up to [`MAX_COST_TYPES`] costs stored
//! inline so that cost arithmetic on the query hot path never allocates.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// Maximum number of cost types supported by a [`CostVec`].
///
/// The paper uses at most five cost types; eight gives headroom without
/// growing the inline representation past a cache line.
pub const MAX_COST_TYPES: usize = 8;

/// A fixed-capacity vector of `d` non-negative costs, stored inline.
///
/// `CostVec` behaves like a tiny `Vec<f64>` capped at [`MAX_COST_TYPES`]
/// elements. Arithmetic (`+`, `+=`) is element-wise and requires both operands
/// to have the same dimensionality.
#[derive(Clone, Copy, Serialize, Deserialize)]
pub struct CostVec {
    len: u8,
    values: [f64; MAX_COST_TYPES],
}

impl CostVec {
    /// Creates a zero vector with `d` cost types.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > MAX_COST_TYPES`.
    #[inline]
    pub fn zeros(d: usize) -> Self {
        assert!(
            d >= 1 && d <= MAX_COST_TYPES,
            "number of cost types must be in [1, {MAX_COST_TYPES}], got {d}"
        );
        Self {
            len: d as u8,
            values: [0.0; MAX_COST_TYPES],
        }
    }

    /// Creates a vector with `d` cost types all equal to `value`.
    #[inline]
    pub fn splat(d: usize, value: f64) -> Self {
        let mut v = Self::zeros(d);
        for i in 0..d {
            v.values[i] = value;
        }
        v
    }

    /// Creates a vector with `d` cost types all equal to `f64::INFINITY`.
    ///
    /// Useful as the identity for element-wise minima and as the "unknown /
    /// unreached" distance in expansion algorithms.
    #[inline]
    pub fn infinity(d: usize) -> Self {
        Self::splat(d, f64::INFINITY)
    }

    /// Creates a cost vector from a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_COST_TYPES`].
    #[inline]
    pub fn from_slice(costs: &[f64]) -> Self {
        let mut v = Self::zeros(costs.len());
        v.values[..costs.len()].copy_from_slice(costs);
        v
    }

    /// Number of cost types (the paper's `d`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: a cost vector has at least one dimension.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The costs as a slice of length `d`.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values[..self.len as usize]
    }

    /// The costs as a mutable slice of length `d`.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values[..self.len as usize]
    }

    /// Returns the `i`-th cost, or `None` if `i >= d`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        self.as_slice().get(i).copied()
    }

    /// Returns true iff every component is finite and non-negative.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.as_slice().iter().all(|&c| c.is_finite() && c >= 0.0)
    }

    /// Returns true iff every component is non-negative (infinities allowed).
    #[inline]
    pub fn is_non_negative(&self) -> bool {
        self.as_slice().iter().all(|&c| c >= 0.0)
    }

    /// Element-wise sum of all components.
    #[inline]
    pub fn total(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Multiplies every component by `factor`, returning a new vector.
    ///
    /// Used to compute *partial* edge weights: a facility lying at fraction
    /// `t ∈ [0, 1]` along an edge is reachable from the first end-node at cost
    /// `t · w(e)` and from the second at `(1 − t) · w(e)` (Section III of the
    /// paper: partial weights proportional to Euclidean distance).
    #[inline]
    pub fn scale(&self, factor: f64) -> Self {
        let mut out = *self;
        for c in out.as_mut_slice() {
            *c *= factor;
        }
        out
    }

    /// Element-wise minimum of two vectors of the same dimensionality.
    #[inline]
    pub fn element_min(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "dimensionality mismatch");
        let mut out = *self;
        for (o, &b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o = o.min(b);
        }
        out
    }

    /// Element-wise maximum of two vectors of the same dimensionality.
    #[inline]
    pub fn element_max(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "dimensionality mismatch");
        let mut out = *self;
        for (o, &b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o = o.max(b);
        }
        out
    }

    /// Lexicographic comparison using IEEE total order per component.
    ///
    /// This is *not* the dominance relation (see [`crate::dominance`]); it is a
    /// total order used for deterministic tie-breaking and sorting.
    #[inline]
    pub fn lex_cmp(&self, other: &Self) -> Ordering {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Returns an iterator over the costs.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.as_slice().iter().copied()
    }
}

impl Index<usize> for CostVec {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for CostVec {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.as_mut_slice()[i]
    }
}

impl Add for CostVec {
    type Output = CostVec;

    #[inline]
    fn add(mut self, rhs: CostVec) -> CostVec {
        self += rhs;
        self
    }
}

impl AddAssign for CostVec {
    #[inline]
    fn add_assign(&mut self, rhs: CostVec) {
        assert_eq!(self.len, rhs.len, "dimensionality mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }
}

impl PartialEq for CostVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for CostVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl fmt::Display for CostVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.3}")?;
        }
        write!(f, ")")
    }
}

impl<'a> FromIterator<f64> for CostVec {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut values = [0.0; MAX_COST_TYPES];
        let mut len = 0usize;
        for v in iter {
            assert!(len < MAX_COST_TYPES, "too many cost types");
            values[len] = v;
            len += 1;
        }
        assert!(len >= 1, "cost vector must have at least one component");
        Self {
            len: len as u8,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_splat() {
        let z = CostVec::zeros(3);
        assert_eq!(z.len(), 3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let s = CostVec::splat(2, 4.5);
        assert_eq!(s.as_slice(), &[4.5, 4.5]);
        let inf = CostVec::infinity(2);
        assert!(inf[0].is_infinite() && inf[1].is_infinite());
    }

    #[test]
    #[should_panic]
    fn zero_dimensions_panics() {
        let _ = CostVec::zeros(0);
    }

    #[test]
    #[should_panic]
    fn too_many_dimensions_panics() {
        let _ = CostVec::zeros(MAX_COST_TYPES + 1);
    }

    #[test]
    fn from_slice_roundtrip() {
        let v = CostVec::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
        assert_eq!(v.get(3), None);
        assert_eq!(v.total(), 6.0);
    }

    #[test]
    fn add_is_elementwise() {
        let a = CostVec::from_slice(&[1.0, 2.0]);
        let b = CostVec::from_slice(&[10.0, 20.0]);
        assert_eq!((a + b).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic]
    fn add_dimension_mismatch_panics() {
        let a = CostVec::from_slice(&[1.0, 2.0]);
        let b = CostVec::from_slice(&[1.0]);
        let _ = a + b;
    }

    #[test]
    fn scale_computes_partial_weights() {
        let w = CostVec::from_slice(&[10.0, 4.0]);
        assert_eq!(w.scale(0.25).as_slice(), &[2.5, 1.0]);
        assert_eq!(w.scale(0.75).as_slice(), &[7.5, 3.0]);
        // The two partial weights sum back to the full edge weight.
        assert_eq!((w.scale(0.25) + w.scale(0.75)).as_slice(), w.as_slice());
    }

    #[test]
    fn element_min_max() {
        let a = CostVec::from_slice(&[1.0, 5.0]);
        let b = CostVec::from_slice(&[2.0, 3.0]);
        assert_eq!(a.element_min(&b).as_slice(), &[1.0, 3.0]);
        assert_eq!(a.element_max(&b).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn lex_cmp_is_total_and_deterministic() {
        let a = CostVec::from_slice(&[1.0, 2.0]);
        let b = CostVec::from_slice(&[1.0, 3.0]);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn validity_checks() {
        assert!(CostVec::from_slice(&[0.0, 1.0]).is_valid());
        assert!(!CostVec::from_slice(&[-1.0, 1.0]).is_valid());
        assert!(!CostVec::infinity(2).is_valid());
        assert!(CostVec::infinity(2).is_non_negative());
    }

    #[test]
    fn display_formats_tuple() {
        let v = CostVec::from_slice(&[1.0, 2.5]);
        assert_eq!(v.to_string(), "(1.000, 2.500)");
    }

    #[test]
    fn from_iterator_collects() {
        let v: CostVec = [3.0, 4.0].into_iter().collect();
        assert_eq!(v.as_slice(), &[3.0, 4.0]);
    }

    proptest! {
        #[test]
        fn prop_add_commutative(
            a in proptest::collection::vec(0.0f64..1e6, 1..=MAX_COST_TYPES),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let ca = CostVec::from_slice(&a);
            let cb = CostVec::from_slice(&b);
            let ab = ca + cb;
            let ba = cb + ca;
            prop_assert_eq!(ab.as_slice(), ba.as_slice());
        }

        #[test]
        fn prop_scale_bounds(
            a in proptest::collection::vec(0.0f64..1e6, 1..=MAX_COST_TYPES),
            t in 0.0f64..=1.0,
        ) {
            let c = CostVec::from_slice(&a);
            let s = c.scale(t);
            for i in 0..c.len() {
                prop_assert!(s[i] <= c[i] + 1e-9);
                prop_assert!(s[i] >= 0.0);
            }
        }

        #[test]
        fn prop_element_min_dominates_neither(
            a in proptest::collection::vec(0.0f64..1e3, 2..=4),
        ) {
            let b: Vec<f64> = a.iter().rev().copied().collect();
            let ca = CostVec::from_slice(&a);
            let cb = CostVec::from_slice(&b);
            let m = ca.element_min(&cb);
            for i in 0..ca.len() {
                prop_assert!(m[i] <= ca[i] && m[i] <= cb[i]);
            }
        }
    }
}
