//! End-to-end workload assembly: network + costs + facilities + queries.

use crate::costs::{assign_costs, CostDistribution};
use crate::facilities::{place_facilities, FacilitySpec};
use crate::network::{build_graph, generate_topology, NetworkSpec, Topology};
use mcn_graph::{GraphBuilder, MultiCostGraph, NetworkLocation, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Full description of a synthetic experiment workload, mirroring the
/// parameters of the paper's Section VI (network, |P|, d, cost distribution,
/// number of query locations).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Approximate number of network nodes.
    pub nodes: usize,
    /// Number of facilities |P|.
    pub facilities: usize,
    /// Number of cost types d.
    pub cost_types: usize,
    /// Joint distribution of the edge costs.
    pub distribution: CostDistribution,
    /// Number of facility clusters (10 in the paper).
    pub clusters: usize,
    /// Number of random query locations to generate.
    pub queries: usize,
    /// Master seed; every derived generator is seeded deterministically.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default parameters (|P| = 100 K, d = 4, anti-correlated,
    /// 10 clusters, San-Francisco-sized network, 100 queries).
    ///
    /// Running this at full size is expensive; the experiment harness scales
    /// it down by default (see `mcn-bench`).
    pub fn paper_default() -> Self {
        Self {
            nodes: 175_000,
            facilities: 100_000,
            cost_types: 4,
            distribution: CostDistribution::AntiCorrelated,
            clusters: 10,
            queries: 100,
            seed: 2010,
        }
    }

    /// The paper's defaults scaled down by `factor` (nodes, facilities and
    /// query count are divided by it). `factor = 1` is the full-size workload.
    pub fn paper_scaled(factor: usize) -> Self {
        assert!(factor >= 1);
        let base = Self::paper_default();
        Self {
            nodes: (base.nodes / factor).max(100),
            facilities: (base.facilities / factor).max(10),
            queries: (base.queries / factor.min(5)).max(5),
            ..base
        }
    }

    /// A small workload suitable for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            nodes: 900,
            facilities: 300,
            cost_types: 3,
            distribution: CostDistribution::AntiCorrelated,
            clusters: 4,
            queries: 5,
            seed,
        }
    }

    /// Serializes the spec as indented JSON, so experiment configurations
    /// can be persisted next to the reports they produced.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a spec from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// A fully materialised workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The generated multi-cost network with facilities embedded.
    pub graph: MultiCostGraph,
    /// Query locations (uniformly random network nodes, as in the paper).
    pub queries: Vec<NetworkLocation>,
    /// The spec the workload was generated from.
    pub spec: WorkloadSpec,
}

/// Generates the workload described by `spec`. Fully deterministic in
/// `spec.seed`.
pub fn generate_workload(spec: &WorkloadSpec) -> Workload {
    let network_spec = NetworkSpec::with_target_nodes(spec.nodes, spec.seed);
    let topology = generate_topology(&network_spec);
    let costs = assign_costs(&topology, spec.cost_types, spec.distribution, spec.seed);

    // Build an intermediate graph (without facilities) to run the clustered
    // placement, then assemble the final graph with facilities included.
    let (skeleton, edge_ids) = build_graph(&topology, &costs);
    let facility_spec = FacilitySpec {
        count: spec.facilities,
        clusters: spec.clusters,
        sigma_hops: 8.0,
        seed: spec.seed.wrapping_add(1),
    };
    let placements = place_facilities(&skeleton, &facility_spec);

    let mut builder = GraphBuilder::with_capacity(
        spec.cost_types,
        topology.num_nodes(),
        topology.num_edges(),
        spec.facilities,
    );
    for &(x, y) in &topology.positions {
        builder.add_node(x, y);
    }
    for ((a, b, _), w) in topology.edges.iter().zip(&costs) {
        builder
            .add_edge(*a, *b, *w)
            .expect("edge re-insertion is valid");
    }
    for (edge, position) in placements {
        // Edge identifiers are identical between the skeleton and the rebuilt
        // graph because edges are inserted in the same order.
        debug_assert!(edge_ids.contains(&edge) || edge.index() < topology.num_edges());
        builder
            .add_facility(edge, position)
            .expect("placement is valid");
    }
    let graph = builder.build().expect("workload graph is valid");

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_add(2));
    let queries = (0..spec.queries)
        .map(|_| NetworkLocation::Node(NodeId::from(rng.gen_range(0..graph.num_nodes()))))
        .collect();

    Workload {
        graph,
        queries,
        spec: spec.clone(),
    }
}

/// Derives a full experiment workload from an **existing** network — e.g. a
/// real road network loaded through `mcn-io` — instead of a synthetic
/// topology. The input graph's first cost type is treated as the edge
/// length; `spec.cost_types` fresh costs are drawn around it with
/// `spec.distribution` (exactly like the synthetic pipeline), clustered
/// facilities are placed, and `spec.queries` node locations are sampled.
/// `spec.nodes` is ignored: the graph defines the topology. Deterministic in
/// `spec.seed`.
///
/// # Panics
/// Panics if the graph has no edges (nowhere to place facilities).
pub fn workload_on_graph(graph: &MultiCostGraph, spec: &WorkloadSpec) -> Workload {
    let topology = Topology {
        positions: graph.nodes().map(|n| (n.x, n.y)).collect(),
        edges: graph
            .edges()
            .map(|e| (e.source, e.target, e.costs[0]))
            .collect(),
    };
    let costs = assign_costs(&topology, spec.cost_types, spec.distribution, spec.seed);
    let facility_spec = FacilitySpec {
        count: spec.facilities,
        clusters: spec.clusters,
        sigma_hops: 8.0,
        seed: spec.seed.wrapping_add(1),
    };
    let placements = place_facilities(graph, &facility_spec);

    let mut builder = GraphBuilder::with_capacity(
        spec.cost_types,
        graph.num_nodes(),
        graph.num_edges(),
        spec.facilities,
    );
    for n in graph.nodes() {
        if n.has_position() {
            builder.add_node(n.x, n.y);
        } else {
            builder.add_node_without_position();
        }
    }
    for (e, w) in graph.edges().zip(&costs) {
        // Edge ids are preserved: edges re-inserted in id order.
        let inserted = if e.directed {
            builder.add_directed_edge(e.source, e.target, *w)
        } else {
            builder.add_edge(e.source, e.target, *w)
        };
        inserted.expect("edge re-insertion is valid");
    }
    for (edge, position) in placements {
        builder
            .add_facility(edge, position)
            .expect("placement is valid");
    }
    let graph = builder.build().expect("derived workload graph is valid");

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_add(2));
    let queries = (0..spec.queries)
        .map(|_| NetworkLocation::Node(NodeId::from(rng.gen_range(0..graph.num_nodes()))))
        .collect();
    Workload {
        graph,
        queries,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_matches_its_spec() {
        let spec = WorkloadSpec::tiny(3);
        let w = generate_workload(&spec);
        assert_eq!(w.graph.num_facilities(), spec.facilities);
        assert_eq!(w.graph.num_cost_types(), spec.cost_types);
        assert_eq!(w.queries.len(), spec.queries);
        assert!(w.graph.num_nodes() >= spec.nodes);
        assert!(w.graph.is_connected());
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let spec = WorkloadSpec::tiny(8);
        let a = generate_workload(&spec);
        let b = generate_workload(&spec);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(
            a.graph.facilities().collect::<Vec<_>>(),
            b.graph.facilities().collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_scaled_reduces_size_sensibly() {
        let full = WorkloadSpec::paper_default();
        let scaled = WorkloadSpec::paper_scaled(50);
        assert_eq!(scaled.cost_types, full.cost_types);
        assert_eq!(scaled.distribution, full.distribution);
        assert!(scaled.nodes <= full.nodes / 40);
        assert!(scaled.facilities <= full.facilities / 40);
        assert!(scaled.queries >= 5);
    }

    #[test]
    fn workload_on_graph_reuses_the_topology() {
        // Build a small multi-cost graph, then derive a fresh workload on it.
        let base = generate_workload(&WorkloadSpec::tiny(4)).graph;
        let spec = WorkloadSpec {
            cost_types: 4,
            facilities: 50,
            queries: 7,
            seed: 99,
            ..WorkloadSpec::tiny(4)
        };
        let w = workload_on_graph(&base, &spec);
        assert_eq!(w.graph.num_nodes(), base.num_nodes());
        assert_eq!(w.graph.num_edges(), base.num_edges());
        assert_eq!(w.graph.num_cost_types(), 4);
        assert_eq!(w.graph.num_facilities(), 50);
        assert_eq!(w.queries.len(), 7);
        // Edge endpoints and direction survive; costs are re-drawn around
        // the old first cost (the "length").
        for (old, new) in base.edges().zip(w.graph.edges()) {
            assert_eq!(old.source, new.source);
            assert_eq!(old.target, new.target);
            assert_eq!(old.directed, new.directed);
            assert!(new.costs[0] > 0.0);
        }
        // Deterministic in the seed.
        let again = workload_on_graph(&base, &spec);
        assert_eq!(w.queries, again.queries);
        assert_eq!(
            w.graph.facilities().collect::<Vec<_>>(),
            again.graph.facilities().collect::<Vec<_>>()
        );
    }

    #[test]
    fn queries_fall_on_existing_nodes() {
        let w = generate_workload(&WorkloadSpec::tiny(5));
        for q in &w.queries {
            match q {
                NetworkLocation::Node(n) => assert!(n.index() < w.graph.num_nodes()),
                NetworkLocation::OnEdge { .. } => panic!("default queries are node-based"),
            }
        }
    }
}
