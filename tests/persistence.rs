//! Integration tests for persistence paths: CSV round-trips through `mcn-io`
//! and file-backed stores through `mcn-storage::FileDisk`.

use mcn::core::prelude::*;
use mcn::gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn::graph::FacilityId;
use mcn::io::{load_csv, write_csv};
use mcn::storage::{BufferConfig, DiskManager, FileDisk, MCNStore};
use std::io::BufReader;
use std::sync::Arc;

fn small_workload(seed: u64) -> mcn::gen::Workload {
    generate_workload(&WorkloadSpec {
        nodes: 900,
        facilities: 250,
        cost_types: 3,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 4,
        queries: 2,
        seed,
    })
}

#[test]
fn csv_roundtrip_preserves_query_answers() {
    let w = small_workload(5);
    let mut buf = Vec::new();
    write_csv(&w.graph, &mut buf).unwrap();
    let reloaded = load_csv(BufReader::new(buf.as_slice())).unwrap();

    let original = Arc::new(MCNStore::build_in_memory(&w.graph, BufferConfig::Pages(64)).unwrap());
    let restored = Arc::new(MCNStore::build_in_memory(&reloaded, BufferConfig::Pages(64)).unwrap());
    for &q in &w.queries {
        let mut a: Vec<FacilityId> = skyline_query(&original, q, Algorithm::Cea)
            .facilities
            .iter()
            .map(|f| f.facility)
            .collect();
        let mut b: Vec<FacilityId> = skyline_query(&restored, q, Algorithm::Cea)
            .facilities
            .iter()
            .map(|f| f.facility)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "skyline changed across the CSV round-trip");
    }
}

#[test]
fn file_backed_store_answers_like_the_in_memory_one() {
    let w = small_workload(9);
    let dir = std::env::temp_dir().join(format!("mcn-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("network.mcn");

    // Build on a file-backed disk, drop the handle, re-open from the file.
    let sidecar = dir.join("network.mcn.meta.json");
    {
        let disk: Arc<dyn DiskManager> = Arc::new(FileDisk::create(&path).unwrap());
        let store = MCNStore::build_on(&w.graph, disk, BufferConfig::Fraction(0.01)).unwrap();
        assert_eq!(store.num_facilities(), w.graph.num_facilities());
        store.export_meta_json(&sidecar).unwrap();
    }
    let disk: Arc<dyn DiskManager> = Arc::new(FileDisk::open(&path).unwrap());
    let reopened = Arc::new(MCNStore::open(disk, BufferConfig::Fraction(0.01)).unwrap());

    // The JSON sidecar written before the restart describes the reopened
    // store exactly (binary page-0 codec and JSON export agree).
    let parsed =
        mcn::storage::StorageMeta::from_json(&std::fs::read_to_string(&sidecar).unwrap()).unwrap();
    assert_eq!(&parsed, reopened.meta());
    let memory =
        Arc::new(MCNStore::build_in_memory(&w.graph, BufferConfig::Fraction(0.01)).unwrap());

    for &q in &w.queries {
        let f = WeightedSum::uniform(3);
        let a = topk_query(&reopened, q, f.clone(), 5, Algorithm::Lsa);
        let b = topk_query(&memory, q, f, 5, Algorithm::Lsa);
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.facility, y.facility);
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn buffer_size_changes_io_but_not_answers() {
    let w = small_workload(13);
    let store =
        Arc::new(MCNStore::build_in_memory(&w.graph, BufferConfig::Fraction(0.02)).unwrap());
    let q = w.queries[0];

    let with_buffer = skyline_query(&store, q, Algorithm::Lsa);
    store.set_buffer(BufferConfig::Fraction(0.0));
    let without_buffer = skyline_query(&store, q, Algorithm::Lsa);

    let mut a: Vec<FacilityId> = with_buffer.facilities.iter().map(|f| f.facility).collect();
    let mut b: Vec<FacilityId> = without_buffer
        .facilities
        .iter()
        .map(|f| f.facility)
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(
        without_buffer.stats.io.buffer_misses >= with_buffer.stats.io.buffer_misses,
        "removing the buffer cannot reduce physical reads"
    );
}
