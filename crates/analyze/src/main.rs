//! CLI driver: `mcn-analyze check [--root PATH] [--baseline PATH]
//! [--update]`.
//!
//! Exit codes: `0` clean, `1` new or stale findings (or an I/O error),
//! `2` usage error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use mcn_analyze::workspace::Workspace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcn-analyze check [--root PATH] [--baseline PATH] [--update]\n\
         \n\
         Runs the workspace invariant lints and diffs the findings against\n\
         the checked-in baseline (crates/analyze/analyze-baseline.json).\n\
         --update rewrites the baseline to accept the current findings."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--update" => update = true,
            _ => return usage(),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| Workspace::discover_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("mcn-analyze: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join("crates/analyze/analyze-baseline.json"));

    let outcome = match mcn_analyze::check(&root, &baseline, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mcn-analyze: {e}");
            return ExitCode::from(1);
        }
    };

    if update {
        println!(
            "mcn-analyze: baseline rewritten with {} finding(s) over {} file(s)",
            outcome.findings.len(),
            outcome.files
        );
        return ExitCode::SUCCESS;
    }

    for f in &outcome.diff.new {
        println!("{f}");
    }
    for e in &outcome.diff.stale {
        println!(
            "{}: stale baseline entry for {} (`{}`) no longer fires — remove it \
             or rerun with --update",
            e.file, e.rule, e.excerpt
        );
    }
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &outcome.findings {
        *per_rule.entry(f.rule.as_str()).or_default() += 1;
    }
    let summary: Vec<String> = per_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    println!(
        "mcn-analyze: {} file(s), {} finding(s){} — {} new, {} stale",
        outcome.files,
        outcome.findings.len(),
        if summary.is_empty() {
            String::new()
        } else {
            format!(" [{}]", summary.join(", "))
        },
        outcome.diff.new.len(),
        outcome.diff.stale.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
