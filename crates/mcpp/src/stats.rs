//! Label-accounting statistics of one Pareto path search.

/// Counters of one [`crate::pareto_paths`]-family run.
///
/// The unit of work of a label-correcting multi-criteria search is the
/// **label**: one non-dominated way of reaching a node. Every optimisation
/// in this crate (target-dominance early termination, ParetoPrep bound
/// pruning) shows up as candidate labels that are discarded before they are
/// stored and propagated — these counters make that measurable and, because
/// the search is deterministic, exactly reproducible (the bench regression
/// gate compares them run-over-run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Candidate labels generated (the initial source label plus one per
    /// relaxed edge × stored predecessor label).
    pub labels_created: u64,
    /// Candidates discarded by bound pruning: the label's optimistic
    /// completion (its cost plus the prep lower bound, or the cost itself
    /// without prep) was weakly dominated by the current target skyline or
    /// strictly dominated by an upper-bound cut.
    pub labels_pruned: u64,
    /// Candidates discarded by classic node-level dominance (an existing
    /// label at the node weakly dominates the candidate).
    pub labels_dominated: u64,
    /// Labels actually stored at a node (created − pruned − dominated).
    pub labels_inserted: u64,
    /// Labels evicted from a node's set by a newly inserted dominating
    /// label.
    pub labels_evicted: u64,
    /// Nodes popped from the label-correcting queue ("settled" in the loose
    /// sense of SPFA — a node can be settled several times).
    pub nodes_settled: u64,
}

impl PathStats {
    /// Fraction of created candidates removed by bound pruning
    /// (0 when nothing was created).
    pub fn prune_fraction(&self) -> f64 {
        if self.labels_created == 0 {
            0.0
        } else {
            self.labels_pruned as f64 / self.labels_created as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_fraction_handles_empty_runs() {
        assert_eq!(PathStats::default().prune_fraction(), 0.0);
        let stats = PathStats {
            labels_created: 10,
            labels_pruned: 4,
            ..Default::default()
        };
        assert!((stats.prune_fraction() - 0.4).abs() < 1e-12);
    }
}
