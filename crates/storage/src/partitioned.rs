//! Region-partitioned storage: one shard (disk + buffer pool) per graph
//! region behind the shared [`StoreView`] read API.
//!
//! A [`PartitionedStore`] slices a network along a
//! [`PartitionMap`](mcn_graph::PartitionMap) (see `mcn_graph::partition`):
//! each region gets its **own** [`MCNStore`] — own [`DiskManager`], own
//! pages, own LRU [`BufferPool`](crate::BufferPool) — holding the adjacency
//! records of its nodes, the facility runs of its incident edges, and full
//! replicas of the (small) facility tree and edge index. A single huge
//! network can thereby spread across disks, and concurrent queries seeded in
//! different regions touch disjoint pools.
//!
//! # Global page ids
//!
//! Adjacency records embed facility-run pointers whose page ids are local to
//! the shard that wrote them. The partitioned store translates between the
//! two spaces: every shard owns a disjoint slice `[base, base + pages)` of a
//! **global** page-id space, [`PartitionedStore::adjacency`] rebases run
//! pointers into it, and [`PartitionedStore::facilities_in_run`] routes a
//! global pointer back to `(shard, local page)`. Callers never see the
//! difference — which is exactly what lets LSA/CEA/top-k run unchanged.
//!
//! # Cross-region accounting
//!
//! A query expanding from its seed region eventually crosses a boundary
//! edge and reads a record owned by a neighbouring shard. Wrap query
//! execution in [`with_seed_region`] and the store counts every
//! adjacency/facility-run read as *home* or *cross*
//! ([`PartitionedStore::region_traffic`]) — the "cross-region page
//! fraction" reported by the `partition` experiment in `mcn-bench`.

use crate::builder::build_region_store;
use crate::disk::{DiskManager, InMemoryDisk};
use crate::error::StorageError;
use crate::meta::StorageMeta;
use crate::page::{Page, PageId};
use crate::records::{AdjacencyList, FacilityRun};
use crate::stats::IoStats;
use crate::store::{BufferConfig, EdgeEndpoints, FacilityInfo, MCNStore};
use crate::view::StoreView;
use mcn_graph::{EdgeId, FacilityId, MultiCostGraph, NodeId, PartitionMap, RegionId};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// The region the query running on this thread was seeded in, if any.
    static SEED_REGION: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Restores the previous seed region when dropped (panic-safe).
struct SeedScope(Option<u32>);

impl Drop for SeedScope {
    fn drop(&mut self) {
        SEED_REGION.with(|c| c.set(self.0));
    }
}

/// Runs `f` with `region` recorded as the current thread's query seed
/// region, so a [`PartitionedStore`] can classify its reads as home or
/// cross-region. Scopes nest and restore on unwind; on a monolithic store
/// the tag is simply never read.
pub fn with_seed_region<R>(region: RegionId, f: impl FnOnce() -> R) -> R {
    let _scope = SeedScope(SEED_REGION.with(|c| c.replace(Some(region.raw()))));
    f()
}

/// The seed region recorded for the current thread, if inside a
/// [`with_seed_region`] scope.
pub fn current_seed_region() -> Option<RegionId> {
    SEED_REGION.with(|c| c.get().map(RegionId::new))
}

/// Home/cross read counters of a [`PartitionedStore`] (only reads performed
/// inside a [`with_seed_region`] scope are classified).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Adjacency/facility-run reads served by the querying thread's seed
    /// region.
    pub home_reads: u64,
    /// Reads that had to leave the seed region.
    pub cross_reads: u64,
}

impl RegionTraffic {
    /// Fraction of classified reads that crossed a region boundary.
    pub fn cross_fraction(&self) -> f64 {
        let total = self.home_reads + self.cross_reads;
        if total == 0 {
            0.0
        } else {
            self.cross_reads as f64 / total as f64
        }
    }
}

/// The JSON sidecar describing a partitioned store: the partition map plus
/// the page-0 header of every region shard. Written next to the region
/// files, it is everything [`PartitionedStore::open`] needs to reassemble
/// the store (and cross-check that the supplied disks are the right ones).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionManifest {
    /// The node → region assignment the shards were built from.
    pub partition: PartitionMap,
    /// Per-region store headers, in region order.
    pub region_metas: Vec<StorageMeta>,
}

impl PartitionManifest {
    /// Serializes the manifest as indented JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a manifest from its JSON sidecar representation, validating
    /// the partition map invariants and the per-region header count.
    ///
    /// # Errors
    /// Returns [`StorageError::Partition`] on malformed JSON or an
    /// inconsistent manifest.
    pub fn from_json(text: &str) -> Result<Self, StorageError> {
        let manifest: Self = serde::json::from_str(text)
            .map_err(|e| StorageError::Partition(format!("manifest JSON: {e}")))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks the manifest invariants.
    ///
    /// # Errors
    /// Returns [`StorageError::Partition`] describing the first violation.
    pub fn validate(&self) -> Result<(), StorageError> {
        self.partition.validate().map_err(StorageError::Partition)?;
        if self.region_metas.len() != self.partition.num_regions() {
            return Err(StorageError::Partition(format!(
                "{} region headers for {} regions",
                self.region_metas.len(),
                self.partition.num_regions()
            )));
        }
        for (r, meta) in self.region_metas.iter().enumerate() {
            if meta.num_nodes as usize != self.partition.num_nodes() {
                return Err(StorageError::Partition(format!(
                    "region {r} header describes {} nodes, partition covers {}",
                    meta.num_nodes,
                    self.partition.num_nodes()
                )));
            }
        }
        Ok(())
    }
}

/// A network sharded by graph region: one [`MCNStore`] per region behind
/// the [`StoreView`] API, with cross-region reads resolved through the
/// partition map.
pub struct PartitionedStore {
    regions: Vec<MCNStore>,
    map: PartitionMap,
    /// Global page-id base of each region (prefix sums of per-shard page
    /// counts, header included), plus one trailing entry with the total.
    page_base: Vec<u32>,
    home_reads: AtomicU64,
    cross_reads: AtomicU64,
}

const _: () = crate::assert_send_sync::<PartitionedStore>();

impl PartitionedStore {
    /// Builds one region store per region of `map` on the supplied disks
    /// and wraps each with a buffer pool of the requested size (fractional
    /// configurations resolve against each shard's own data pages).
    ///
    /// # Errors
    /// Fails when the disk count does not match the region count, the map
    /// does not cover the graph, or any region build fails.
    pub fn build_on(
        graph: &MultiCostGraph,
        map: PartitionMap,
        disks: Vec<Arc<dyn DiskManager>>,
        buffer: BufferConfig,
    ) -> Result<Self, StorageError> {
        map.validate().map_err(StorageError::Partition)?;
        if map.num_nodes() != graph.num_nodes() {
            return Err(StorageError::Partition(format!(
                "partition covers {} nodes, graph has {}",
                map.num_nodes(),
                graph.num_nodes()
            )));
        }
        if disks.len() != map.num_regions() {
            return Err(StorageError::Partition(format!(
                "{} disks for {} regions",
                disks.len(),
                map.num_regions()
            )));
        }
        let mut regions = Vec::with_capacity(map.num_regions());
        for (r, disk) in disks.into_iter().enumerate() {
            let assignment = &map.assignment;
            build_region_store(graph, disk.as_ref(), &|node: NodeId| {
                assignment[node.index()] == r as u32
            })?;
            regions.push(MCNStore::open(disk, buffer)?);
        }
        Self::assemble(regions, map)
    }

    /// Builds the store on fresh in-memory disks — the default substrate
    /// for experiments.
    pub fn build_in_memory(
        graph: &MultiCostGraph,
        map: PartitionMap,
        buffer: BufferConfig,
    ) -> Result<Self, StorageError> {
        let disks = (0..map.num_regions())
            .map(|_| Arc::new(InMemoryDisk::new()) as Arc<dyn DiskManager>)
            .collect();
        Self::build_on(graph, map, disks, buffer)
    }

    /// Builds the store on in-memory disks that block for `latency` per
    /// physical read (the charged-I/O model of the experiments).
    pub fn build_in_memory_with_latency(
        graph: &MultiCostGraph,
        map: PartitionMap,
        buffer: BufferConfig,
        latency: std::time::Duration,
    ) -> Result<Self, StorageError> {
        let disks = (0..map.num_regions())
            .map(|_| Arc::new(InMemoryDisk::with_read_latency(latency)) as Arc<dyn DiskManager>)
            .collect();
        Self::build_on(graph, map, disks, buffer)
    }

    /// Reassembles a partitioned store from already-built region disks and
    /// the manifest sidecar, verifying that every disk's page-0 header
    /// matches the manifest.
    ///
    /// # Errors
    /// Fails on count mismatches, unreadable headers, or a header that
    /// disagrees with the manifest.
    pub fn open(
        disks: Vec<Arc<dyn DiskManager>>,
        manifest: &PartitionManifest,
        buffer: BufferConfig,
    ) -> Result<Self, StorageError> {
        manifest.validate()?;
        if disks.len() != manifest.region_metas.len() {
            return Err(StorageError::Partition(format!(
                "{} disks for {} region headers",
                disks.len(),
                manifest.region_metas.len()
            )));
        }
        let mut regions = Vec::with_capacity(disks.len());
        for (r, disk) in disks.into_iter().enumerate() {
            let mut page = Page::zeroed();
            disk.read_page(PageId::new(0), &mut page);
            let meta = StorageMeta::decode(&page)?;
            if meta != manifest.region_metas[r] {
                return Err(StorageError::Partition(format!(
                    "region {r}: disk header does not match the manifest"
                )));
            }
            regions.push(MCNStore::open(disk, buffer)?);
        }
        Self::assemble(regions, manifest.partition.clone())
    }

    fn assemble(regions: Vec<MCNStore>, map: PartitionMap) -> Result<Self, StorageError> {
        let mut page_base = Vec::with_capacity(regions.len() + 1);
        let mut base = 0u32;
        for store in &regions {
            page_base.push(base);
            // +1: the shard's header page also occupies the global id space.
            // Each shard fits u32 individually (build_store checks), but the
            // *sum* must too — a silent wrap would overlap the slices and
            // route facility runs to the wrong shard.
            base = base
                .checked_add(store.meta().data_pages + 1)
                .ok_or(StorageError::TooManyPages)?;
        }
        page_base.push(base);
        Ok(Self {
            regions,
            map,
            page_base,
            home_reads: AtomicU64::new(0),
            cross_reads: AtomicU64::new(0),
        })
    }

    /// The partition map the shards were built from.
    pub fn partition(&self) -> &PartitionMap {
        &self.map
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region shards, in region order.
    pub fn region_stores(&self) -> &[MCNStore] {
        &self.regions
    }

    /// The region owning `node`.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.map.region_of(node)
    }

    /// The manifest sidecar describing this store (see
    /// [`PartitionedStore::open`]).
    pub fn manifest(&self) -> PartitionManifest {
        PartitionManifest {
            partition: self.map.clone(),
            region_metas: self.regions.iter().map(|s| *s.meta()).collect(),
        }
    }

    /// Writes the manifest JSON sidecar to `path`.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn export_manifest_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.manifest().to_json())
    }

    /// Per-region I/O counter snapshots, in region order.
    pub fn per_region_stats(&self) -> Vec<IoStats> {
        self.regions.iter().map(|s| s.io_stats()).collect()
    }

    /// Home/cross read counters (see [`with_seed_region`]).
    pub fn region_traffic(&self) -> RegionTraffic {
        RegionTraffic {
            home_reads: self.home_reads.load(Ordering::Relaxed),
            cross_reads: self.cross_reads.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the home/cross counters.
    pub fn reset_region_traffic(&self) {
        self.home_reads.store(0, Ordering::Relaxed);
        self.cross_reads.store(0, Ordering::Relaxed);
    }

    /// Classifies a read served by `region` against the thread's seed.
    fn count_read(&self, region: u32) {
        if let Some(seed) = SEED_REGION.with(|c| c.get()) {
            if seed == region {
                self.home_reads.fetch_add(1, Ordering::Relaxed);
            } else {
                self.cross_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The region whose global page slice contains `page`.
    fn region_of_page(&self, page: PageId) -> usize {
        debug_assert!(page.raw() < *self.page_base.last().unwrap());
        // partition_point: first base greater than the page, minus one.
        self.page_base.partition_point(|&b| b <= page.raw()) - 1
    }
}

impl StoreView for PartitionedStore {
    fn num_cost_types(&self) -> usize {
        self.regions[0].num_cost_types()
    }

    fn num_nodes(&self) -> usize {
        self.regions[0].num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.regions[0].num_edges()
    }

    fn num_facilities(&self) -> usize {
        self.regions[0].num_facilities()
    }

    fn data_pages(&self) -> usize {
        self.regions.iter().map(|s| s.data_pages()).sum()
    }

    fn adjacency(&self, node: NodeId) -> AdjacencyList {
        let r = self.map.region_of(node).index();
        self.count_read(r as u32);
        let mut adjacency = self.regions[r].adjacency(node);
        // Rebase run pointers into the global page-id space so they can be
        // routed back to this shard later.
        let base = self.page_base[r];
        for entry in &mut adjacency.entries {
            if let Some(run) = &mut entry.facilities {
                run.start.page = PageId::new(run.start.page.raw() + base);
            }
        }
        adjacency
    }

    fn facilities_in_run(&self, run: &FacilityRun) -> Vec<(FacilityId, f64)> {
        let r = self.region_of_page(run.start.page);
        self.count_read(r as u32);
        let mut local = *run;
        local.start.page = PageId::new(run.start.page.raw() - self.page_base[r]);
        self.regions[r].facilities_in_run(&local)
    }

    fn facility_info(&self, facility: FacilityId) -> Option<FacilityInfo> {
        // The facility tree is replicated in every shard; serve the lookup
        // from the querying thread's seed region so index reads stay in its
        // hot pool.
        let r = current_seed_region()
            .map(|r| r.index())
            .filter(|&r| r < self.regions.len())
            .unwrap_or(0);
        self.regions[r].facility_info(facility)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> Option<EdgeEndpoints> {
        let r = current_seed_region()
            .map(|r| r.index())
            .filter(|&r| r < self.regions.len())
            .unwrap_or(0);
        self.regions[r].edge_endpoints(edge)
    }

    fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for store in &self.regions {
            total.accumulate(&store.io_stats());
        }
        total
    }

    fn publish_metrics(&self, registry: &mcn_obs::MetricsRegistry) {
        // Per-region snapshots first, then their sum as the unlabelled
        // aggregate, so the aggregate is exactly the sum of what was
        // published per region.
        let per_region = self.per_region_stats();
        let mut total = IoStats::default();
        for (r, stats) in per_region.iter().enumerate() {
            let region = format!("r{r}");
            stats.publish(registry, &[("region", region.as_str())]);
            total.accumulate(stats);
        }
        total.publish(registry, &[]);
        let traffic = self.region_traffic();
        registry
            .counter("storage.home_reads", &[])
            .set(traffic.home_reads);
        registry
            .counter("storage.cross_reads", &[])
            .set(traffic.cross_reads);
        registry
            .gauge("storage.cross_fraction", &[])
            .set(traffic.cross_fraction());
    }

    fn clear_buffers(&self) {
        for store in &self.regions {
            store.buffer().clear();
        }
    }

    fn set_buffer(&self, buffer: BufferConfig) {
        for store in &self.regions {
            store.set_buffer(buffer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{partition_graph, CostVec, GraphBuilder, PartitionSpec};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Random connected graph with facilities (mirrors the store.rs fixture).
    fn random_graph(seed: u64, nodes: usize, extra: usize, facilities: usize) -> MultiCostGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = 3;
        let mut b = GraphBuilder::new(d);
        let ids: Vec<_> = (0..nodes)
            .map(|i| b.add_node(i as f64, rng.gen_range(0.0..100.0)))
            .collect();
        let mut edges = Vec::new();
        for w in ids.windows(2) {
            let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1..10.0)).collect();
            edges.push(b.add_edge(w[0], w[1], CostVec::from_slice(&costs)).unwrap());
        }
        for _ in 0..extra {
            let a = ids[rng.gen_range(0..nodes)];
            let c = ids[rng.gen_range(0..nodes)];
            if a == c {
                continue;
            }
            let costs: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1..10.0)).collect();
            edges.push(b.add_edge(a, c, CostVec::from_slice(&costs)).unwrap());
        }
        for _ in 0..facilities {
            let e = edges[rng.gen_range(0..edges.len())];
            b.add_facility(e, rng.gen_range(0.0..=1.0)).unwrap();
        }
        b.build().unwrap()
    }

    fn build(graph: &MultiCostGraph, regions: usize) -> PartitionedStore {
        let map = partition_graph(graph, &PartitionSpec::new(regions));
        PartitionedStore::build_in_memory(graph, map, BufferConfig::Pages(32)).unwrap()
    }

    #[test]
    fn adjacency_matches_the_monolithic_store_at_any_region_count() {
        let g = random_graph(1, 200, 120, 150);
        let mono = MCNStore::build_in_memory(&g, BufferConfig::Pages(64)).unwrap();
        for regions in [1, 2, 4, 8] {
            let part = build(&g, regions);
            assert_eq!(part.num_regions(), regions);
            for node in g.nodes() {
                let a = StoreView::adjacency(&mono, node.id);
                let b = StoreView::adjacency(&part, node.id);
                assert_eq!(a.node, b.node);
                assert_eq!(a.entries.len(), b.entries.len());
                for (ea, eb) in a.entries.iter().zip(&b.entries) {
                    assert_eq!(ea.neighbor, eb.neighbor);
                    assert_eq!(ea.edge, eb.edge);
                    assert_eq!(ea.traversable, eb.traversable);
                    assert_eq!(ea.costs.as_slice(), eb.costs.as_slice());
                    // Run *pointers* differ by design; resolved contents
                    // must not.
                    match (ea.facilities, eb.facilities) {
                        (None, None) => {}
                        (Some(ra), Some(rb)) => {
                            assert_eq!(
                                StoreView::facilities_in_run(&mono, &ra),
                                StoreView::facilities_in_run(&part, &rb),
                            );
                        }
                        other => panic!("run presence diverged: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn index_lookups_match_the_monolithic_store() {
        let g = random_graph(2, 150, 80, 100);
        let mono = MCNStore::build_in_memory(&g, BufferConfig::Pages(64)).unwrap();
        let part = build(&g, 4);
        for f in g.facilities() {
            assert_eq!(
                StoreView::facility_info(&mono, f.id),
                StoreView::facility_info(&part, f.id)
            );
        }
        for e in g.edges() {
            assert_eq!(
                StoreView::edge_endpoints(&mono, e.id),
                StoreView::edge_endpoints(&part, e.id)
            );
        }
        assert!(StoreView::facility_info(&part, FacilityId::new(99_999)).is_none());
        assert_eq!(StoreView::num_nodes(&part), g.num_nodes());
        assert_eq!(StoreView::num_edges(&part), g.num_edges());
        assert_eq!(StoreView::num_facilities(&part), g.num_facilities());
    }

    #[test]
    fn global_page_ids_are_disjoint_and_route_back() {
        let g = random_graph(3, 120, 60, 200);
        let part = build(&g, 4);
        // Every rebased run pointer must land inside its owning region's
        // global slice.
        for node in g.nodes() {
            let r = part.region_of(node.id).index();
            let adjacency = StoreView::adjacency(&part, node.id);
            for entry in adjacency.entries {
                if let Some(run) = entry.facilities {
                    assert_eq!(part.region_of_page(run.start.page), r);
                    let facilities = StoreView::facilities_in_run(&part, &run);
                    assert_eq!(facilities.len(), run.count as usize);
                }
            }
        }
    }

    #[test]
    fn io_stats_aggregate_the_region_pools() {
        let g = random_graph(4, 150, 80, 60);
        let part = build(&g, 3);
        StoreView::clear_buffers(&part);
        for node in g.nodes() {
            let _ = StoreView::adjacency(&part, node.id);
        }
        let total = StoreView::io_stats(&part);
        let per_region = part.per_region_stats();
        assert_eq!(per_region.len(), 3);
        let summed: u64 = per_region.iter().map(|s| s.logical_reads).sum();
        assert_eq!(total.logical_reads, summed);
        assert!(total.logical_reads > 0);
        assert_eq!(total.logical_reads, total.buffer_hits + total.buffer_misses);
    }

    #[test]
    fn cross_fraction_guards_the_zero_sample_case() {
        assert_eq!(RegionTraffic::default().cross_fraction(), 0.0);
        let t = RegionTraffic {
            home_reads: 3,
            cross_reads: 1,
        };
        assert!((t.cross_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn publish_metrics_exposes_per_region_and_aggregate_counters() {
        let g = random_graph(7, 150, 80, 60);
        let part = build(&g, 3);
        StoreView::clear_buffers(&part);
        let home_node = g
            .nodes()
            .find(|n| part.region_of(n.id) == RegionId::new(0))
            .unwrap()
            .id;
        with_seed_region(RegionId::new(0), || {
            for node in g.nodes() {
                let _ = StoreView::adjacency(&part, node.id);
            }
            let _ = StoreView::adjacency(&part, home_node);
        });

        let registry = mcn_obs::MetricsRegistry::new();
        StoreView::publish_metrics(&part, &registry);
        let snap = registry.snapshot();

        // Aggregate reconciles exactly with io_stats and with the sum of
        // the per-region series.
        let total = StoreView::io_stats(&part);
        assert_eq!(
            snap.counter_value("storage.logical_reads", &[]),
            Some(total.logical_reads)
        );
        let mut per_region_sum = 0;
        for r in 0..3 {
            let region = format!("r{r}");
            per_region_sum += snap
                .counter_value("storage.logical_reads", &[("region", region.as_str())])
                .unwrap();
        }
        assert_eq!(per_region_sum, total.logical_reads);
        assert_eq!(
            snap.counter_value("storage.buffer_hits", &[]).unwrap()
                + snap.counter_value("storage.buffer_misses", &[]).unwrap(),
            total.logical_reads
        );

        // Traffic counters and the guarded fraction ride along.
        let traffic = part.region_traffic();
        assert_eq!(
            snap.counter_value("storage.home_reads", &[]),
            Some(traffic.home_reads)
        );
        assert_eq!(
            snap.counter_value("storage.cross_reads", &[]),
            Some(traffic.cross_reads)
        );
        assert!(
            (snap.gauge_value("storage.cross_fraction", &[]).unwrap() - traffic.cross_fraction())
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn traffic_counters_follow_the_seed_region_scope() {
        let g = random_graph(5, 100, 50, 40);
        let part = build(&g, 2);
        // Unscoped reads are not classified.
        let _ = StoreView::adjacency(&part, NodeId::new(0));
        assert_eq!(part.region_traffic(), RegionTraffic::default());
        // Scoped reads split by the owning region.
        let home_node = g
            .nodes()
            .find(|n| part.region_of(n.id) == RegionId::new(0))
            .unwrap()
            .id;
        let away_node = g
            .nodes()
            .find(|n| part.region_of(n.id) == RegionId::new(1))
            .unwrap()
            .id;
        with_seed_region(RegionId::new(0), || {
            let _ = StoreView::adjacency(&part, home_node);
            let _ = StoreView::adjacency(&part, away_node);
        });
        let traffic = part.region_traffic();
        assert_eq!(traffic.home_reads, 1);
        assert_eq!(traffic.cross_reads, 1);
        assert!((traffic.cross_fraction() - 0.5).abs() < 1e-12);
        part.reset_region_traffic();
        assert_eq!(part.region_traffic(), RegionTraffic::default());
        // The scope restores the previous tag.
        assert_eq!(current_seed_region(), None);
        with_seed_region(RegionId::new(1), || {
            assert_eq!(current_seed_region(), Some(RegionId::new(1)));
            with_seed_region(RegionId::new(0), || {
                assert_eq!(current_seed_region(), Some(RegionId::new(0)));
            });
            assert_eq!(current_seed_region(), Some(RegionId::new(1)));
        });
    }

    #[test]
    fn manifest_roundtrips_and_open_reassembles() {
        let g = random_graph(6, 120, 70, 90);
        let map = partition_graph(&g, &PartitionSpec::new(3));
        let disks: Vec<Arc<dyn DiskManager>> = (0..3)
            .map(|_| Arc::new(InMemoryDisk::new()) as Arc<dyn DiskManager>)
            .collect();
        let built =
            PartitionedStore::build_on(&g, map, disks.clone(), BufferConfig::Fraction(0.02))
                .unwrap();
        let manifest = built.manifest();
        // JSON sidecar round-trip.
        let parsed = PartitionManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
        // Reassembly answers identically.
        let reopened =
            PartitionedStore::open(disks.clone(), &parsed, BufferConfig::Pages(16)).unwrap();
        for node in g.nodes().take(40) {
            assert_eq!(
                StoreView::adjacency(&built, node.id).entries.len(),
                StoreView::adjacency(&reopened, node.id).entries.len()
            );
        }
        // A manifest that disagrees with the disks is rejected.
        let mut tampered = parsed.clone();
        tampered.region_metas[1].num_facilities += 1;
        assert!(matches!(
            PartitionedStore::open(disks, &tampered, BufferConfig::Pages(16)),
            Err(StorageError::Partition(msg)) if msg.contains("manifest")
        ));
    }

    #[test]
    fn build_rejects_mismatched_inputs() {
        let g = random_graph(7, 60, 30, 20);
        let map = partition_graph(&g, &PartitionSpec::new(2));
        // Wrong disk count.
        let one_disk: Vec<Arc<dyn DiskManager>> = vec![Arc::new(InMemoryDisk::new())];
        assert!(matches!(
            PartitionedStore::build_on(&g, map.clone(), one_disk, BufferConfig::Pages(8)),
            Err(StorageError::Partition(_))
        ));
        // Map for a different graph size.
        let small = PartitionMap::single(3);
        assert!(matches!(
            PartitionedStore::build_in_memory(&g, small, BufferConfig::Pages(8)),
            Err(StorageError::Partition(_))
        ));
    }

    #[test]
    fn single_region_store_mirrors_monolithic_layout() {
        let g = random_graph(8, 80, 40, 50);
        let part = build(&g, 1);
        let mono = MCNStore::build_in_memory(&g, BufferConfig::Pages(32)).unwrap();
        // One region, same builder: the shard's header equals the
        // monolithic header.
        assert_eq!(part.region_stores()[0].meta(), mono.meta());
        assert_eq!(StoreView::data_pages(&part), StoreView::data_pages(&mono));
    }
}
