//! Offline `Serialize`/`Deserialize` derives that emit real field-by-field
//! implementations against the vendored `serde` data model.
//!
//! The build environment has no access to crates.io, so this macro cannot
//! lean on `syn`/`quote`; instead it hand-parses the item declaration from
//! the raw token stream (attributes and visibility are skipped, generics are
//! rejected — no derived type in this workspace is generic) and assembles
//! the generated impl as source text.
//!
//! Supported shapes, mirroring what the workspace derives on:
//!
//! * named-field structs (field-by-field object mapping),
//! * tuple structs (arity 1 is transparent like serde's newtype structs,
//!   higher arities map to sequences),
//! * unit structs (`null`),
//! * enums with unit, tuple and struct variants (externally tagged).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` with a genuine per-field implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut b = format!("__s.struct_begin(\"{}\")?;\n", item.name);
            for f in fields {
                b.push_str(&format!(
                    "__s.struct_field(\"{f}\")?;\n\
                     ::serde::Serialize::serialize(&self.{f}, __s)?;\n"
                ));
            }
            b.push_str("__s.struct_end()\n");
            b
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, __s)\n".to_string(),
        Kind::TupleStruct(n) => {
            let mut b = format!("__s.seq_begin(::std::option::Option::Some({n}))?;\n");
            for i in 0..*n {
                b.push_str(&format!(
                    "__s.seq_element()?;\n\
                     ::serde::Serialize::serialize(&self.{i}, __s)?;\n"
                ));
            }
            b.push_str("__s.seq_end()\n");
            b
        }
        Kind::UnitStruct => "__s.write_null()\n".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __s.unit_variant(\"{name}\", \"{vname}\"),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__v0) => {{\n\
                         __s.variant_begin(\"{name}\", \"{vname}\")?;\n\
                         ::serde::Serialize::serialize(__v0, __s)?;\n\
                         __s.variant_end()\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\n\
                             __s.variant_begin(\"{name}\", \"{vname}\")?;\n\
                             __s.seq_begin(::std::option::Option::Some({n}))?;\n",
                            bindings.join(", ")
                        );
                        for b in &bindings {
                            arm.push_str(&format!(
                                "__s.seq_element()?;\n\
                                 ::serde::Serialize::serialize({b}, __s)?;\n"
                            ));
                        }
                        arm.push_str("__s.seq_end()?;\n__s.variant_end()\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             __s.variant_begin(\"{name}\", \"{vname}\")?;\n\
                             __s.struct_begin(\"{vname}\")?;\n",
                            bindings.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "__s.struct_field(\"{f}\")?;\n\
                                 ::serde::Serialize::serialize(__f_{f}, __s)?;\n"
                            ));
                        }
                        arm.push_str("__s.struct_end()?;\n__s.variant_end()\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {} {{\n\
         fn serialize<__S: ::serde::Serializer + ?Sized>(\n\
         &self,\n\
         __s: &mut __S,\n\
         ) -> ::std::result::Result<(), __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n",
        item.name
    );
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` with a genuine per-field implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => named_fields_deserializer(name, name, fields),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))\n")
        }
        Kind::TupleStruct(n) => {
            let mut b = "__d.seq_begin()?;\n".to_string();
            for i in 0..*n {
                b.push_str(&format!(
                    "if !__d.seq_next()? {{\n\
                     return ::std::result::Result::Err(<__D::Error as ::serde::Error>::custom(\
                     \"tuple struct `{name}` is missing element {i}\"));\n}}\n\
                     let __v{i} = ::serde::Deserialize::deserialize(__d)?;\n"
                ));
            }
            let args: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
            b.push_str(&format!(
                "if __d.seq_next()? {{\n\
                 return ::std::result::Result::Err(<__D::Error as ::serde::Error>::custom(\
                 \"tuple struct `{name}` has extra elements\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))\n",
                args.join(", ")
            ));
            b
        }
        Kind::UnitStruct => format!(
            "if __d.read_null()? {{\n\
             ::std::result::Result::Ok({name})\n\
             }} else {{\n\
             ::std::result::Result::Err(<__D::Error as ::serde::Error>::custom(\
             \"expected null for unit struct `{name}`\"))\n\
             }}\n"
        ),
        Kind::Enum(variants) => {
            let tags: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         if __payload {{\n\
                         return ::std::result::Result::Err(\
                         <__D::Error as ::serde::Error>::invalid_variant_shape(\"{name}\", \"{vname}\"));\n\
                         }}\n\
                         {name}::{vname}\n}}\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         if !__payload {{\n\
                         return ::std::result::Result::Err(\
                         <__D::Error as ::serde::Error>::invalid_variant_shape(\"{name}\", \"{vname}\"));\n\
                         }}\n\
                         {name}::{vname}(::serde::Deserialize::deserialize(__d)?)\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             if !__payload {{\n\
                             return ::std::result::Result::Err(\
                             <__D::Error as ::serde::Error>::invalid_variant_shape(\"{name}\", \"{vname}\"));\n\
                             }}\n\
                             __d.seq_begin()?;\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "if !__d.seq_next()? {{\n\
                                 return ::std::result::Result::Err(<__D::Error as ::serde::Error>::custom(\
                                 \"variant `{vname}` is missing element {i}\"));\n}}\n\
                                 let __v{i} = ::serde::Deserialize::deserialize(__d)?;\n"
                            ));
                        }
                        let args: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        arm.push_str(&format!(
                            "if __d.seq_next()? {{\n\
                             return ::std::result::Result::Err(<__D::Error as ::serde::Error>::custom(\
                             \"variant `{vname}` has extra elements\"));\n}}\n\
                             {name}::{vname}({})\n}}\n",
                            args.join(", ")
                        ));
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let constructor = format!("{name}::{vname}");
                        let inner = named_fields_deserializer(&constructor, vname, fields);
                        arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             if !__payload {{\n\
                             return ::std::result::Result::Err(\
                             <__D::Error as ::serde::Error>::invalid_variant_shape(\"{name}\", \"{vname}\"));\n\
                             }}\n\
                             (|| {{ {inner} }})()?\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = __d.variant_begin(\"{name}\", &[{}])?;\n\
                 let __value = match __tag.as_str() {{\n\
                 {arms}\
                 __other => {{\n\
                 return ::std::result::Result::Err(\
                 <__D::Error as ::serde::Error>::unknown_variant(\"{name}\", __other));\n\
                 }}\n\
                 }};\n\
                 __d.variant_end(__payload)?;\n\
                 ::std::result::Result::Ok(__value)\n",
                tags.join(", ")
            )
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de> + ?Sized>(\n\
         __d: &mut __D,\n\
         ) -> ::std::result::Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    );
    code.parse().expect("derived Deserialize impl parses")
}

/// Generates the decode-into-slots loop shared by named structs and struct
/// variants: parse an object, fill one `Option` slot per field, then build
/// `constructor { field: value, .. }`, erroring on missing fields.
///
/// The generated block evaluates to
/// `::std::result::Result::Ok(constructor { .. })` so it can be used both
/// as a function body and (wrapped in a closure) as a match-arm expression.
fn named_fields_deserializer(constructor: &str, ty_label: &str, fields: &[String]) -> String {
    let mut b = format!("__d.struct_begin(\"{ty_label}\")?;\n");
    for f in fields {
        b.push_str(&format!(
            "let mut __field_{f}: ::std::option::Option<_> = ::std::option::Option::None;\n"
        ));
    }
    b.push_str(
        "while let ::std::option::Option::Some(__key) = __d.field_key()? {\n\
         match __key.as_str() {\n",
    );
    for f in fields {
        b.push_str(&format!(
            "\"{f}\" => {{\n\
             __field_{f} = ::std::option::Option::Some(::serde::Deserialize::deserialize(__d)?);\n\
             }}\n"
        ));
    }
    b.push_str("_ => { __d.skip_value()?; }\n}\n}\n");
    b.push_str(&format!("::std::result::Result::Ok({constructor} {{\n"));
    for f in fields {
        b.push_str(&format!(
            "{f}: match __field_{f} {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => {{\n\
             return ::std::result::Result::Err(\
             <__D::Error as ::serde::Error>::missing_field(\"{ty_label}\", \"{f}\"));\n\
             }}\n\
             }},\n"
        ));
    }
    b.push_str("})\n");
    b
}

// ---------------------------------------------------------------------------
// Item parsing (no syn available: raw token-tree walk)
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the offline shim");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(&token_vec(g.stream()))),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(&token_vec(g.stream()))),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: Kind::UnitStruct,
            },
            other => panic!("serde derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(&token_vec(g.stream()))),
            },
            other => panic!("serde derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    }
}

fn token_vec(stream: TokenStream) -> Vec<TokenTree> {
    stream.into_iter().collect()
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` qualifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` sequences, returning the field names. Types are
/// skipped by scanning to the next comma outside angle brackets (parenthese
/// and brackets are opaque groups at the token-tree level, so only `<`/`>`
/// depth needs tracking).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        let mut angle_depth = 0usize;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                // Saturate: a `>` that closes nothing is the tail of a
                // `->` (fn-pointer / Fn-trait return type), not a generic
                // closer.
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant: one per non-empty
/// comma-separated segment outside angle brackets.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut fields = 0;
    let mut segment_len = 0;
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_len > 0 {
                    fields += 1;
                }
                segment_len = 0;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_len += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                // Saturate for the same reason as in `parse_named_fields`:
                // the `>` of a `->` return-type arrow closes nothing.
                angle_depth = angle_depth.saturating_sub(1);
                segment_len += 1;
            }
            _ => segment_len += 1,
        }
    }
    if segment_len > 0 {
        fields += 1;
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&token_vec(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(&token_vec(g.stream())))
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive: explicit enum discriminants are not supported")
            }
            None => {}
            other => panic!("serde derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}
