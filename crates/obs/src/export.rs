//! Exporters: chrome://tracing `trace_event` JSON for spans, and a
//! Prometheus-style text exposition for metric snapshots.

use serde::{Deserialize, Serialize};

use crate::hist::bucket_upper;
use crate::registry::MetricsSnapshot;
use crate::span::SpanEvent;

/// One chrome `trace_event` record. We emit complete events (`ph: "X"`)
/// with microsecond timestamps, which is what chrome://tracing and
/// Perfetto expect. The export is the *bare JSON array* form of the trace
/// format (chrome accepts either the array or the `traceEvents` object
/// wrapper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    pub ts: f64,
    pub dur: f64,
    pub pid: u64,
    pub tid: u64,
    pub args: TraceArgs,
}

/// Per-event metadata shown in the chrome://tracing detail pane.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceArgs {
    pub tier: String,
    pub query: u64,
}

/// Convert drained span events into chrome trace events (one `pid`, one
/// `tid` per worker stripe, 1-based so chrome doesn't hide tid 0).
pub fn to_trace_events(events: &[SpanEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| TraceEvent {
            name: e.name.clone(),
            cat: e.tier.clone(),
            ph: "X".to_string(),
            ts: e.start_ns as f64 / 1_000.0,
            dur: e.dur_ns as f64 / 1_000.0,
            pid: 1,
            tid: u64::from(e.worker) + 1,
            args: TraceArgs {
                tier: e.tier.clone(),
                query: e.query,
            },
        })
        .collect()
}

/// Serialize span events as a chrome://tracing-loadable JSON document.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    serde::json::to_string_pretty(&to_trace_events(events))
}

/// Parse a chrome trace document produced by [`chrome_trace_json`] (used
/// by round-trip checks).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    serde::json::from_str(text).map_err(|e| e.to_string())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn label_block_with(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v))
        .chain(std::iter::once(format!("{extra_key}=\"{extra_val}\"")))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Render a snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
/// Output order follows the snapshot (sorted by name/labels), so the
/// exposition is deterministic.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        type_line(&mut out, &name, "counter");
        out.push_str(&format!("{}{} {}\n", name, label_block(&c.labels), c.value));
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        type_line(&mut out, &name, "gauge");
        out.push_str(&format!("{}{} {}\n", name, label_block(&g.labels), g.value));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        type_line(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for &(idx, n) in &h.buckets {
            cumulative += n;
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                label_block_with(&h.labels, "le", &bucket_upper(idx as usize).to_string()),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            label_block_with(&h.labels, "le", "+Inf"),
            h.count
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            name,
            label_block(&h.labels),
            h.sum
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            name,
            label_block(&h.labels),
            h.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::MetricsRegistry;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "schedule".into(),
                tier: "skyline".into(),
                query: 0,
                worker: 0,
                start_ns: 1_000,
                dur_ns: 500,
            },
            SpanEvent {
                name: "search".into(),
                tier: "skyline".into(),
                query: 0,
                worker: 0,
                start_ns: 1_500,
                dur_ns: 10_000,
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_and_scales_to_micros() {
        let events = sample_events();
        let text = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].ph, "X");
        assert_eq!(parsed[0].ts, 1.0);
        assert_eq!(parsed[0].dur, 0.5);
        assert_eq!(parsed[1].args.query, 0);
        assert_eq!(parsed[1].tid, 1);
        // Byte-exact reserialization.
        assert_eq!(serde::json::to_string_pretty(&parsed), text);
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace_json(&[]);
        assert_eq!(parse_chrome_trace(&text).unwrap(), vec![]);
    }

    #[test]
    fn prometheus_text_exposes_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("storage.logical_reads", &[("region", "r0")])
            .set(10);
        reg.gauge("prep.cache.hit_ratio", &[]).set(0.75);
        let h = Histogram::new();
        h.record(3);
        h.record(700);
        reg.merge_histogram(&h.snapshot("engine.latency_ns", vec![("tier".into(), "topk".into())]));
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE storage_logical_reads counter"));
        assert!(text.contains("storage_logical_reads{region=\"r0\"} 10"));
        assert!(text.contains("prep_cache_hit_ratio 0.75"));
        assert!(text.contains("engine_latency_ns_bucket{tier=\"topk\",le=\"3\"} 1"));
        assert!(text.contains("engine_latency_ns_bucket{tier=\"topk\",le=\"1023\"} 2"));
        assert!(text.contains("engine_latency_ns_bucket{tier=\"topk\",le=\"+Inf\"} 2"));
        assert!(text.contains("engine_latency_ns_sum{tier=\"topk\"} 703"));
        assert!(text.contains("engine_latency_ns_count{tier=\"topk\"} 2"));
    }

    #[test]
    fn prometheus_text_of_empty_snapshot_is_empty() {
        assert_eq!(prometheus_text(&MetricsSnapshot::default()), "");
    }
}
