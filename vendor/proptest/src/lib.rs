//! Offline stand-in for the slice of proptest this workspace uses.
//!
//! Implements value-generating strategies (numeric ranges, tuples,
//! [`collection::vec`], [`arbitrary::any`], `prop_map`), a deterministic
//! ChaCha8-seeded test runner, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Shrinking of failing cases is not
//! implemented: a failure panics with the case number so it can be replayed
//! (generation is deterministic per test name).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform strategy over a half-open numeric range.
    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample_single(self.clone(), rng)
        }
    }

    /// Uniform strategy over an inclusive numeric range.
    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample_single(self.clone(), rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Full-domain floats are rarely useful for these tests; the
            // unit interval matches what range strategies produce.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy generating any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and per-block configuration.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Number of cases run per property when not configured explicitly.
    pub const DEFAULT_CASES: u32 = 64;

    /// Configuration for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: DEFAULT_CASES,
            }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Marker returned (via `Err`) by [`crate::prop_assume!`] when a
    /// generated case does not satisfy the property's preconditions.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// The RNG driving strategy generation: ChaCha8 seeded from the test
    /// name, so every run of a given test replays the same cases.
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        /// Creates the deterministic RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0100_0000_01b3);
            }
            Self {
                inner: ChaCha8Rng::seed_from_u64(hash),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings. Doc
/// comments (and any other attributes) on the test functions pass through:
/// the matcher captures the whole attribute stack — `#[test]` included, as
/// doc comments desugar to `#[doc = "…"]` attributes — and re-emits it on
/// the generated zero-argument function. The `$(#[$meta])+` repetition is
/// unambiguous because it terminates at the `fn` keyword.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(
                                let $pat = $crate::strategy::Strategy::new_value(
                                    &$strategy,
                                    &mut rng,
                                );
                            )+
                            // `prop_assume!` rejects a case by returning
                            // `Err(Rejected)` from this closure.
                            let __mcn_proptest_outcome: ::std::result::Result<
                                (),
                                $crate::test_runner::Rejected,
                            > = (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                            __mcn_proptest_outcome.is_ok()
                        }),
                    );
                    match result {
                        Ok(_accepted) => {}
                        Err(panic) => {
                            eprintln!(
                                "proptest: {} failed at case {}/{} (deterministic; rerun to replay)",
                                stringify!($name),
                                case + 1,
                                config.cases,
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @block ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` inside a property; kept as a separate macro for source
/// compatibility with real proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Only valid directly inside a `proptest!` body, which runs in a closure
/// returning `Result<(), Rejected>`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_compose((a, b) in (0usize..10, 5u16..=9), extra in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            let _ = extra;
        }

        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(0i32..100, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn prop_map_transforms(doubled in (1usize..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled >= 2 && doubled < 100);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = (0u64..u64::MAX).prop_map(|x| x);
        let mut a = crate::test_runner::TestRng::for_test("fixed");
        let mut b = crate::test_runner::TestRng::for_test("fixed");
        for _ in 0..32 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
