//! # mcn-index
//!
//! A **hierarchical partial-path route index** over the multi-cost graph:
//! a contraction-style hierarchy whose shortcut arcs carry the *Pareto set*
//! of witness-path cost vectors, in the spirit of partial-path indexing for
//! multi-cost route queries (Yang et al., arXiv 2004.12424) grafted onto
//! the contraction-hierarchy machinery of single-cost road networks.
//!
//! ## Build phase
//!
//! Nodes are ranked by a deterministic importance heuristic (edge
//! difference + contracted-neighbor count, lazily re-evaluated, node-id
//! tie-break) and contracted bottom-up. Contracting `v` replaces its arcs
//! by **shortcut arcs** `u → w` whose *bundle* is the Pareto set of
//! combined cost vectors `c(u→v) + c(v→w)`; a candidate is dropped iff a
//! bounded witness search finds a `u → w` path avoiding `v` that weakly
//! dominates it — safe for every scalarization α ≥ 0 *and* for skyline
//! assembly, because a weakly dominating substitute path always exists.
//! An inconclusive (budget-bounded) witness search keeps the shortcut:
//! only index size suffers, never correctness. Bundles are capped
//! ([`IndexConfig::max_bundle`]); any truncation clears the index's
//! [`RouteIndex::exact`] flag, and the engine then falls back to the
//! prep-backed tier.
//!
//! The build parallelizes per region (reusing the deterministic
//! [`mcn_graph::partition_graph`] partitioner): interior nodes of distinct
//! regions never share arcs, so each region contracts its interior
//! independently; boundary nodes form an **overlay graph** contracted
//! sequentially on top.
//!
//! ## Query phase
//!
//! Both query kinds run bidirectional *upward* searches (forward over
//! `up_out`, backward over `up_in`) and assemble the answer from indexed
//! path fragments:
//!
//! * [`RouteIndex::alpha_path`] — scalarized bidirectional Dijkstra with
//!   the standard stopping criterion; byte-identical to
//!   [`mcn_alpha::scalarized_path`] (totals and cost vectors are recomputed
//!   edge-by-edge in path order, so the bits match, not just the values).
//! * [`RouteIndex::skyline_paths`] — a dominance-merging variant producing
//!   the full path skyline, byte-identical to
//!   `mcn_mcpp::pareto_paths_prepped`.
//!
//! Both inherit the **exact ties caveat** documented on
//! [`mcn_mcpp::pareto_paths`]: on graphs with exactly tied cost vectors the
//! surviving *representative* path may differ; the continuous float costs
//! of every seeded workload have no such ties.
//!
//! Bicriterion (`d == 2`) dominance checks use the sorted-sweep structure
//! of [`mcn_graph::Front2`] — bundles and label sets are kept
//! lexicographically sorted, which at `d == 2` makes weak dominance a
//! binary search instead of a scan.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod config;
pub mod persist;
pub mod query;
pub mod structure;

pub use config::IndexConfig;
pub use persist::IndexManifest;
pub use query::{IndexAlphaResult, IndexQueryStats, IndexSkylineResult};
pub use structure::{ArcEntry, Fragment, RouteIndex, UpArc};

/// Compile-time thread-safety proof, mirrored from the other workspace
/// crates: instantiated in a `const _` next to each shared type so the
/// build fails the moment a field change makes the type lose
/// `Send`/`Sync`.
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
