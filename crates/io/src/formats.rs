//! Parsers and writers for the supported text formats.

use mcn_graph::{CostVec, EdgeId, GraphBuilder, GraphError, MultiCostGraph, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing or writing network files.
#[derive(Debug)]
pub enum IoFormatError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed; carries the 1-based line number and reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The parsed data does not form a valid graph.
    Graph(GraphError),
}

impl fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "I/O error: {e}"),
            IoFormatError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            IoFormatError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoFormatError {}

impl From<std::io::Error> for IoFormatError {
    fn from(e: std::io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

impl From<GraphError> for IoFormatError {
    fn from(e: GraphError) -> Self {
        IoFormatError::Graph(e)
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> IoFormatError {
    IoFormatError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Loads a network from Brinkhoff-style text files: the node file has lines
/// `id x y`, the edge file has lines `id source target length`. External node
/// identifiers may be arbitrary integers; they are remapped to dense ids in
/// file order. The resulting graph has a single cost type (the length).
///
/// Lines that are empty or start with `#` are ignored in both files.
pub fn load_node_edge_files<N: BufRead, E: BufRead>(
    nodes: N,
    edges: E,
) -> Result<MultiCostGraph, IoFormatError> {
    let mut builder = GraphBuilder::new(1);
    let mut remap: HashMap<u64, NodeId> = HashMap::new();
    for (lineno, line) in nodes.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let id: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing node id"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "node id is not an integer"))?;
        let x: f64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing x coordinate"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "x coordinate is not a number"))?;
        let y: f64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing y coordinate"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "y coordinate is not a number"))?;
        let dense = builder.add_node(x, y);
        if remap.insert(id, dense).is_some() {
            return Err(parse_err(lineno + 1, format!("duplicate node id {id}")));
        }
    }
    for (lineno, line) in edges.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let _edge_id = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing edge id"))?;
        let source: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing source node"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "source is not an integer"))?;
        let target: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing target node"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "target is not an integer"))?;
        let length: f64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno + 1, "missing edge length"))?
            .parse()
            .map_err(|_| parse_err(lineno + 1, "length is not a number"))?;
        let s = *remap
            .get(&source)
            .ok_or_else(|| parse_err(lineno + 1, format!("unknown source node {source}")))?;
        let t = *remap
            .get(&target)
            .ok_or_else(|| parse_err(lineno + 1, format!("unknown target node {target}")))?;
        builder.add_edge(s, t, CostVec::from_slice(&[length]))?;
    }
    Ok(builder.build()?)
}

/// Loads a network from a DIMACS shortest-path challenge `.gr` file: a
/// `p sp <n> <m>` problem line followed by `a <u> <v> <w>` arc lines
/// (1-based node identifiers, directed arcs, integer weights). Coordinates are
/// unknown, so nodes carry no position. The graph has a single cost type.
pub fn load_dimacs_gr<R: BufRead>(reader: R) -> Result<MultiCostGraph, IoFormatError> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p sp") {
            let mut parts = rest.split_whitespace();
            let n: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing node count"))?
                .parse()
                .map_err(|_| parse_err(lineno + 1, "node count is not an integer"))?;
            let mut b = GraphBuilder::new(1);
            for _ in 0..n {
                b.add_node_without_position();
            }
            builder = Some(b);
        } else if let Some(rest) = line.strip_prefix('a') {
            let b = builder
                .as_mut()
                .ok_or_else(|| parse_err(lineno + 1, "arc line before the problem line"))?;
            let mut parts = rest.split_whitespace();
            let u: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing arc tail"))?
                .parse()
                .map_err(|_| parse_err(lineno + 1, "arc tail is not an integer"))?;
            let v: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing arc head"))?
                .parse()
                .map_err(|_| parse_err(lineno + 1, "arc head is not an integer"))?;
            let w: f64 = parts
                .next()
                .ok_or_else(|| parse_err(lineno + 1, "missing arc weight"))?
                .parse()
                .map_err(|_| parse_err(lineno + 1, "arc weight is not a number"))?;
            if u == 0 || v == 0 {
                return Err(parse_err(lineno + 1, "DIMACS nodes are 1-based"));
            }
            b.add_directed_edge(
                NodeId::from(u - 1),
                NodeId::from(v - 1),
                CostVec::from_slice(&[w]),
            )?;
        }
    }
    builder
        .ok_or_else(|| parse_err(0, "no problem line found"))
        .and_then(|b| Ok(b.build()?))
}

/// Writes a full multi-cost workload (nodes, edges with their `d` costs, and
/// facilities) as a single CSV stream with three sections, loadable again with
/// [`load_csv`].
pub fn write_csv<W: Write>(graph: &MultiCostGraph, mut out: W) -> Result<(), IoFormatError> {
    writeln!(out, "# mcn-csv v1")?;
    writeln!(out, "[nodes]")?;
    for n in graph.nodes() {
        writeln!(out, "{},{},{}", n.id.raw(), n.x, n.y)?;
    }
    writeln!(out, "[edges]")?;
    for e in graph.edges() {
        let costs: Vec<String> = e.costs.iter().map(|c| c.to_string()).collect();
        writeln!(
            out,
            "{},{},{},{},{}",
            e.id.raw(),
            e.source.raw(),
            e.target.raw(),
            e.directed as u8,
            costs.join(",")
        )?;
    }
    writeln!(out, "[facilities]")?;
    for f in graph.facilities() {
        writeln!(out, "{},{},{}", f.id.raw(), f.edge.raw(), f.position)?;
    }
    Ok(())
}

/// Loads a workload written by [`write_csv`].
pub fn load_csv<R: BufRead>(reader: R) -> Result<MultiCostGraph, IoFormatError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Nodes,
        Edges,
        Facilities,
    }
    let mut section = Section::None;
    let mut nodes: Vec<(f64, f64)> = Vec::new();
    let mut edges: Vec<(u32, u32, bool, Vec<f64>)> = Vec::new();
    let mut facilities: Vec<(u32, f64)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[nodes]" => section = Section::Nodes,
            "[edges]" => section = Section::Edges,
            "[facilities]" => section = Section::Facilities,
            _ => {
                let fields: Vec<&str> = line.split(',').collect();
                match section {
                    Section::None => {
                        return Err(parse_err(lineno + 1, "data before a section header"))
                    }
                    Section::Nodes => {
                        if fields.len() != 3 {
                            return Err(parse_err(lineno + 1, "node rows have 3 fields"));
                        }
                        let x: f64 = fields[1]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad x"))?;
                        let y: f64 = fields[2]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad y"))?;
                        nodes.push((x, y));
                    }
                    Section::Edges => {
                        if fields.len() < 5 {
                            return Err(parse_err(lineno + 1, "edge rows have at least 5 fields"));
                        }
                        let s: u32 = fields[1]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad source"))?;
                        let t: u32 = fields[2]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad target"))?;
                        let directed = fields[3] == "1";
                        let costs: Result<Vec<f64>, _> =
                            fields[4..].iter().map(|f| f.parse()).collect();
                        let costs = costs.map_err(|_| parse_err(lineno + 1, "bad cost value"))?;
                        edges.push((s, t, directed, costs));
                    }
                    Section::Facilities => {
                        if fields.len() != 3 {
                            return Err(parse_err(lineno + 1, "facility rows have 3 fields"));
                        }
                        let e: u32 = fields[1]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad edge"))?;
                        let pos: f64 = fields[2]
                            .parse()
                            .map_err(|_| parse_err(lineno + 1, "bad position"))?;
                        facilities.push((e, pos));
                    }
                }
            }
        }
    }

    let d = edges.first().map(|e| e.3.len()).unwrap_or(1);
    let mut b = GraphBuilder::with_capacity(d, nodes.len(), edges.len(), facilities.len());
    for (x, y) in nodes {
        b.add_node(x, y);
    }
    for (s, t, directed, costs) in edges {
        let cv = CostVec::from_slice(&costs);
        if directed {
            b.add_directed_edge(NodeId::new(s), NodeId::new(t), cv)?;
        } else {
            b.add_edge(NodeId::new(s), NodeId::new(t), cv)?;
        }
    }
    for (e, pos) in facilities {
        b.add_facility(EdgeId::new(e), pos)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_gen::{generate_workload, WorkloadSpec};
    use std::io::BufReader;

    #[test]
    fn node_edge_files_roundtrip_small_example() {
        let nodes = "# node file\n10 0.0 0.0\n11 1.0 0.0\n12 1.0 1.0\n";
        let edges = "# edge file\n0 10 11 5.0\n1 11 12 2.5\n";
        let g = load_node_edge_files(
            BufReader::new(nodes.as_bytes()),
            BufReader::new(edges.as_bytes()),
        )
        .unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_cost_types(), 1);
        assert_eq!(g.edge(EdgeId::new(0)).costs.as_slice(), &[5.0]);
        assert!(g.is_connected());
    }

    #[test]
    fn node_edge_files_report_parse_errors_with_line_numbers() {
        let nodes = "1 0.0 0.0\nnot-a-number 1.0 2.0\n";
        let err = load_node_edge_files(
            BufReader::new(nodes.as_bytes()),
            BufReader::new("".as_bytes()),
        )
        .unwrap_err();
        match err {
            IoFormatError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let edges = "0 1 99 5.0\n";
        let err = load_node_edge_files(
            BufReader::new("1 0.0 0.0\n".as_bytes()),
            BufReader::new(edges.as_bytes()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    #[test]
    fn dimacs_gr_loads_directed_arcs() {
        let gr = "c comment\np sp 3 4\na 1 2 7\na 2 1 7\na 2 3 4\na 3 2 4\n";
        let g = load_dimacs_gr(BufReader::new(gr.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert!(g.edges().all(|e| e.directed));
        assert_eq!(g.edge(EdgeId::new(2)).costs.as_slice(), &[4.0]);
    }

    #[test]
    fn dimacs_without_problem_line_fails() {
        let gr = "a 1 2 7\n";
        assert!(load_dimacs_gr(BufReader::new(gr.as_bytes())).is_err());
    }

    #[test]
    fn csv_roundtrip_preserves_a_generated_workload() {
        let w = generate_workload(&WorkloadSpec::tiny(6));
        let mut buf = Vec::new();
        write_csv(&w.graph, &mut buf).unwrap();
        let loaded = load_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.num_nodes(), w.graph.num_nodes());
        assert_eq!(loaded.num_edges(), w.graph.num_edges());
        assert_eq!(loaded.num_facilities(), w.graph.num_facilities());
        assert_eq!(loaded.num_cost_types(), w.graph.num_cost_types());
        // Spot-check an edge and a facility.
        let e = EdgeId::new(3);
        assert_eq!(
            loaded.edge(e).costs.as_slice(),
            w.graph.edge(e).costs.as_slice()
        );
        let f = mcn_graph::FacilityId::new(5);
        assert_eq!(loaded.facility(f), w.graph.facility(f));
    }
}
