//! Scalarized preference serving tier: α-personalized fastest paths.
//!
//! The skyline machinery in `mcn-mcpp` answers "all Pareto-optimal routes" —
//! the *explore* tier. A production service mostly answers "the best route
//! for this user": a linear scalarization α·cost over the d cost types,
//! which collapses the multi-cost search to a single-criterion shortest
//! path that is orders of magnitude cheaper than a full path skyline — the
//! *serve* tier.
//!
//! The crate provides:
//!
//! - [`Preference`] — a user's weight vector α on the standard simplex
//!   Δ^{d-1} (validated, normalized, JSON-serializable);
//! - [`scalarized_path`] — a deterministic binary-heap Dijkstra over the
//!   α-collapsed edge costs;
//! - [`scalarized_path_astar`] — the same search driven by the admissible,
//!   consistent heuristic h(v) = α·L(v), where L(v) are the per-cost
//!   lower bounds of a `mcn-prep` [`PrepTable`](mcn_prep::PrepTable);
//! - [`ScalarStats`] — pushed/settled/relaxed/pruned counters mirroring
//!   `mcn-mcpp`'s `PathStats`;
//! - [`PreferenceEstimator`] — recovers a user's α from an observed route
//!   by iterative feasibility search (no LP dependency).
//!
//! Determinism contract: identical inputs produce byte-identical results —
//! the heap tie-breaks on node id, and the A* variant reconstructs the
//! exact same shortest-path tree edges as the plain Dijkstra whenever the
//! optimum is unique (which seeded continuous costs guarantee).

mod estimator;
mod preference;
mod search;

pub use estimator::{EstimateOutcome, PreferenceEstimator};
pub use preference::Preference;
pub use search::{scalarized_path, scalarized_path_astar, ScalarPath, ScalarResult, ScalarStats};

/// Compile-time Send + Sync proof helper (same pattern as the sibling
/// crates; `mcn-analyze` checks the `const _` proofs exist).
#[allow(dead_code)]
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
