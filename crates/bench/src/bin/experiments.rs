//! Command-line experiment runner.
//!
//! Reproduces the paper's Section VI figures as text tables:
//!
//! ```text
//! experiments all                    # every figure at the default 1/50 scale
//! experiments sky-p topk-k           # selected figures
//! experiments all --scale 10         # closer to the paper's full size
//! experiments all --queries 50       # more query locations per data point
//! experiments all --latency-ms 10    # charge 10 ms per physical page read
//! experiments all --out results/     # persist each table as JSON
//! experiments all --check results/   # re-parse persisted tables, no re-run
//! ```
//!
//! `--out DIR` writes one `<id>.json` per selected experiment and verifies
//! the write by reading the file back and comparing the parsed table with
//! the in-memory one. `--check DIR` loads previously written tables without
//! re-running anything, verifies that re-serializing the parsed value
//! reproduces the file byte-for-byte (the serializer is deterministic, so
//! this proves a lossless round-trip across the process restart), and
//! renders them. Both exit non-zero on any write, parse or mismatch
//! failure.

use mcn_bench::{
    compare_alpha_gate, compare_gate, compare_index_gate, compare_label_gate, dimacs_graph,
    dimacs_workload, render_alpha_table, render_index_table, render_obs_table,
    render_partition_table, render_prep_table, render_table, render_throughput_table, run_alpha,
    run_alpha_gate, run_alpha_on_graph, run_gate, run_index, run_index_gate, run_index_on_graph,
    run_label_gate, run_obs, run_partition, run_partition_on, run_prep, run_prep_on_graph,
    run_throughput, AlphaConfig, AlphaGateConfig, AlphaReport, AlphaSettledBaseline, Experiment,
    ExperimentConfig, ExperimentTable, GateBaseline, GateConfig, IndexExperimentConfig,
    IndexGateConfig, IndexLatencyBaseline, IndexReport, LabelBaseline, LabelGateConfig,
    ObsExperimentConfig, ObsReport, PartitionConfig, PartitionTable, PrepConfig, PrepReport,
    ThroughputConfig, ThroughputTable, ALPHA_ID, GATE_TOLERANCE, INDEX_ID, OBS_ID, PARTITION_ID,
    PREP_ID, THROUGHPUT_ID,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if args[0] == "gate" {
        return run_gate_command(&args[1..]);
    }

    let mut config = ExperimentConfig::default();
    let mut throughput_config = ThroughputConfig::default();
    let mut partition_config = PartitionConfig::default();
    let mut prep_config = PrepConfig::default();
    let mut alpha_config = AlphaConfig::default();
    let mut index_config = IndexExperimentConfig::default();
    let mut obs_config = ObsExperimentConfig::default();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut with_throughput = false;
    let mut with_partition = false;
    let mut with_prep = false;
    let mut with_alpha = false;
    let mut with_index = false;
    let mut with_obs = false;
    let mut dimacs: Option<String> = None;
    let mut run_all = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut check_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "all" => run_all = true,
            id if id == THROUGHPUT_ID => with_throughput = true,
            id if id == PARTITION_ID => with_partition = true,
            id if id == PREP_ID => with_prep = true,
            id if id == ALPHA_ID => with_alpha = true,
            id if id == INDEX_ID => with_index = true,
            id if id == OBS_ID => with_obs = true,
            "--obs-batch" => {
                obs_config.batch = expect_value(&args, &mut i, "--obs-batch");
            }
            "--obs-workers" => {
                obs_config.workers = expect_value(&args, &mut i, "--obs-workers");
            }
            "--obs-repeats" => {
                obs_config.repeats = expect_value(&args, &mut i, "--obs-repeats");
            }
            "--no-obs-asserts" => {
                obs_config.assert_overhead = false;
            }
            "--index-nodes" => {
                let list: String = expect_value(&args, &mut i, "--index-nodes");
                match parse_worker_list(&list) {
                    Some(nodes) => index_config.nodes = nodes,
                    None => {
                        eprintln!("--index-nodes expects a comma-separated list, e.g. 150,250");
                        return ExitCode::from(2);
                    }
                }
            }
            "--index-dims" => {
                let list: String = expect_value(&args, &mut i, "--index-dims");
                match parse_worker_list(&list) {
                    Some(dims) => index_config.dims = dims,
                    None => {
                        eprintln!("--index-dims expects a comma-separated list, e.g. 2,3,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--index-pairs" => {
                index_config.pairs = expect_value(&args, &mut i, "--index-pairs");
            }
            "--index-users" => {
                index_config.users = expect_value(&args, &mut i, "--index-users");
            }
            "--index-regions" => {
                index_config.regions = expect_value(&args, &mut i, "--index-regions");
            }
            "--no-index-asserts" => {
                index_config.assert_improvements = false;
            }
            "--alpha-nodes" => {
                let list: String = expect_value(&args, &mut i, "--alpha-nodes");
                match parse_worker_list(&list) {
                    Some(nodes) => alpha_config.nodes = nodes,
                    None => {
                        eprintln!("--alpha-nodes expects a comma-separated list, e.g. 250,500");
                        return ExitCode::from(2);
                    }
                }
            }
            "--alpha-dims" => {
                let list: String = expect_value(&args, &mut i, "--alpha-dims");
                match parse_worker_list(&list) {
                    Some(dims) => alpha_config.dims = dims,
                    None => {
                        eprintln!("--alpha-dims expects a comma-separated list, e.g. 2,3,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--alpha-pairs" => {
                alpha_config.pairs = expect_value(&args, &mut i, "--alpha-pairs");
            }
            "--alpha-users" => {
                alpha_config.users = expect_value(&args, &mut i, "--alpha-users");
            }
            "--alpha-batch" => {
                alpha_config.batch = expect_value(&args, &mut i, "--alpha-batch");
            }
            "--alpha-targets" => {
                alpha_config.targets = expect_value(&args, &mut i, "--alpha-targets");
            }
            "--alpha-cache" => {
                alpha_config.cache_capacity = expect_value(&args, &mut i, "--alpha-cache");
            }
            "--no-alpha-asserts" => {
                alpha_config.assert_improvements = false;
            }
            "--prep-nodes" => {
                let list: String = expect_value(&args, &mut i, "--prep-nodes");
                match parse_worker_list(&list) {
                    Some(nodes) => prep_config.nodes = nodes,
                    None => {
                        eprintln!("--prep-nodes expects a comma-separated list, e.g. 250,500");
                        return ExitCode::from(2);
                    }
                }
            }
            "--prep-dims" => {
                let list: String = expect_value(&args, &mut i, "--prep-dims");
                match parse_worker_list(&list) {
                    Some(dims) => prep_config.dims = dims,
                    None => {
                        eprintln!("--prep-dims expects a comma-separated list, e.g. 2,3,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--prep-pairs" => {
                prep_config.pairs = expect_value(&args, &mut i, "--prep-pairs");
            }
            "--prep-targets" => {
                prep_config.targets = expect_value(&args, &mut i, "--prep-targets");
            }
            "--prep-cache" => {
                prep_config.cache_capacity = expect_value(&args, &mut i, "--prep-cache");
            }
            "--prep-batch" => {
                prep_config.batch = expect_value(&args, &mut i, "--prep-batch");
            }
            "--no-prep-asserts" => {
                prep_config.assert_improvements = false;
            }
            "--regions" => {
                let list: String = expect_value(&args, &mut i, "--regions");
                match parse_worker_list(&list) {
                    Some(regions) => partition_config.regions = regions,
                    None => {
                        eprintln!("--regions expects a comma-separated list, e.g. 1,2,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--partition-workers" => {
                partition_config.workers = expect_value(&args, &mut i, "--partition-workers");
            }
            "--dimacs" => {
                dimacs = Some(expect_value(&args, &mut i, "--dimacs"));
            }
            "--buffer" => {
                let fraction: f64 = expect_value(&args, &mut i, "--buffer");
                throughput_config.buffer = fraction;
                partition_config.buffer = fraction;
            }
            "--scale" => {
                config.scale = expect_value(&args, &mut i, "--scale");
                partition_config.scale = config.scale;
            }
            "--queries" => {
                config.queries = Some(expect_value(&args, &mut i, "--queries"));
            }
            "--latency-ms" => {
                let ms: f64 = expect_value(&args, &mut i, "--latency-ms");
                config.latency = ms / 1000.0;
            }
            "--seed" => {
                config.seed = expect_value(&args, &mut i, "--seed");
            }
            "--batch" => {
                throughput_config.batch = expect_value(&args, &mut i, "--batch");
                partition_config.batch = throughput_config.batch;
            }
            "--workers" => {
                let list: String = expect_value(&args, &mut i, "--workers");
                match parse_worker_list(&list) {
                    Some(workers) => throughput_config.workers = workers,
                    None => {
                        eprintln!("--workers expects a comma-separated list, e.g. 1,2,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--read-latency-us" => {
                throughput_config.read_latency_us =
                    expect_value(&args, &mut i, "--read-latency-us");
                partition_config.read_latency_us = throughput_config.read_latency_us;
            }
            "--out" => {
                out_dir = Some(expect_value(&args, &mut i, "--out"));
            }
            "--check" => {
                check_dir = Some(expect_value(&args, &mut i, "--check"));
            }
            other => match Experiment::from_id(other) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment or flag: {other}");
                    print_usage();
                    return ExitCode::from(2);
                }
            },
        }
        i += 1;
    }
    if run_all {
        selected = Experiment::all().to_vec();
        with_throughput = true;
        with_partition = true;
        with_prep = true;
        with_alpha = true;
        with_index = true;
        with_obs = true;
    }
    if selected.is_empty()
        && !with_throughput
        && !with_partition
        && !with_prep
        && !with_alpha
        && !with_index
        && !with_obs
    {
        eprintln!("nothing to run");
        print_usage();
        return ExitCode::from(2);
    }
    throughput_config.scale = config.scale;
    throughput_config.seed = config.seed;
    // The partition experiment keeps its own (smaller) default scale — see
    // `PartitionConfig::default` — unless --scale is given explicitly.
    partition_config.seed = config.seed;
    prep_config.seed = config.seed;
    prep_config.workers = partition_config.workers;
    alpha_config.seed = config.seed;
    alpha_config.workers = partition_config.workers;
    index_config.seed = config.seed;
    obs_config.scale = config.scale;
    obs_config.seed = config.seed;
    if let Some(path) = &dimacs {
        partition_config.source = path.clone();
        prep_config.source = path.clone();
        alpha_config.source = path.clone();
        index_config.source = path.clone();
    }

    if out_dir.is_some() && check_dir.is_some() {
        eprintln!("--out and --check are mutually exclusive (write first, then check)");
        return ExitCode::from(2);
    }
    if let Some(dir) = check_dir {
        return check_tables(
            &dir,
            &selected,
            with_throughput,
            with_partition,
            with_prep,
            with_alpha,
            with_index,
            with_obs,
        );
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "# MCN preference-query experiments (scale 1/{}, {} ms per physical read, seed {})",
        config.scale,
        config.latency * 1000.0,
        config.seed
    );
    println!(
        "# Paper defaults scaled: {} nodes, {} facilities, d = {}, anti-correlated, {} queries/point\n",
        config.base_spec().nodes,
        config.base_spec().facilities,
        config.base_spec().cost_types,
        config.base_spec().queries
    );
    for experiment in selected {
        let table = experiment.run(&config);
        println!("{}", render_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_table(dir, &table) {
                eprintln!("failed to persist table {}: {e}", table.id);
                return ExitCode::FAILURE;
            }
        }
    }
    if with_throughput {
        let table = run_throughput(&throughput_config);
        println!("{}", render_throughput_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_throughput_table(dir, &table) {
                eprintln!("failed to persist table {THROUGHPUT_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if with_partition {
        let table = match &dimacs {
            Some(path) => match dimacs_workload(path, &partition_config) {
                Ok(workload) => run_partition_on(&partition_config, &workload),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => run_partition(&partition_config),
        };
        println!("{}", render_partition_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_partition_table(dir, &table) {
                eprintln!("failed to persist table {PARTITION_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if with_prep {
        let table = match &dimacs {
            Some(path) => match dimacs_graph(path) {
                Ok(graph) => run_prep_on_graph(&prep_config, &graph),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => run_prep(&prep_config),
        };
        println!("{}", render_prep_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_prep_table(dir, &table) {
                eprintln!("failed to persist table {PREP_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if with_alpha {
        let table = match &dimacs {
            Some(path) => match dimacs_graph(path) {
                Ok(graph) => run_alpha_on_graph(&alpha_config, &graph),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => run_alpha(&alpha_config),
        };
        println!("{}", render_alpha_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_alpha_table(dir, &table) {
                eprintln!("failed to persist table {ALPHA_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if with_index {
        let table = match &dimacs {
            Some(path) => match dimacs_graph(path) {
                Ok(graph) => run_index_on_graph(&index_config, &graph),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            None => run_index(&index_config),
        };
        println!("{}", render_index_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_index_table(dir, &table) {
                eprintln!("failed to persist table {INDEX_ID}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if with_obs {
        let table = run_obs(&obs_config);
        println!("{}", render_obs_table(&table));
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_obs_table(dir, &table) {
                eprintln!("failed to persist table {OBS_ID}: {e}");
                return ExitCode::FAILURE;
            }
            // The embedded chrome trace, as its own loadable artifact.
            let trace_path = dir.join("obs-trace.json");
            if let Err(e) = std::fs::write(&trace_path, &table.trace_json) {
                eprintln!("cannot write {}: {e}", trace_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", trace_path.display());
        }
    }
    ExitCode::SUCCESS
}

/// `experiments gate --baseline FILE [--labels FILE] [--alpha FILE]
/// [--index FILE] [--update]`: re-measure the deterministic mean logical
/// reads of every figure point (and, with `--labels`, the prep experiment's
/// mean label counts; with `--alpha`, the scalarized tier's mean settled
/// nodes; with `--index`, the route index's settled-node and arc-entry
/// counters) and fail on a > 2 % regression against the checked-in
/// baselines (`--update` rewrites them instead).
fn run_gate_command(args: &[String]) -> ExitCode {
    let mut baseline_path: Option<PathBuf> = None;
    let mut labels_path: Option<PathBuf> = None;
    let mut alpha_path: Option<PathBuf> = None;
    let mut index_path: Option<PathBuf> = None;
    let mut update = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => baseline_path = Some(expect_value(args, &mut i, "--baseline")),
            "--labels" => labels_path = Some(expect_value(args, &mut i, "--labels")),
            "--alpha" => alpha_path = Some(expect_value(args, &mut i, "--alpha")),
            "--index" => index_path = Some(expect_value(args, &mut i, "--index")),
            "--update" => update = true,
            other => {
                eprintln!("unknown gate flag: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if baseline_path.is_none()
        && labels_path.is_none()
        && alpha_path.is_none()
        && index_path.is_none()
    {
        eprintln!("gate requires --baseline FILE, --labels FILE, --alpha FILE and/or --index FILE");
        return ExitCode::from(2);
    }

    let mut violations: Vec<String> = Vec::new();
    let mut points = 0usize;
    if let Some(path) = &baseline_path {
        let current = run_gate(&GateConfig::default());
        if update {
            if let Err(e) = std::fs::write(path, current.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote gate baseline {}", path.display());
        } else {
            let baseline: GateBaseline = match load_baseline(path, GateBaseline::from_json) {
                Ok(baseline) => baseline,
                Err(code) => return code,
            };
            points += current.tables.iter().map(|t| t.points.len()).sum::<usize>();
            violations.extend(compare_gate(&current, &baseline, GATE_TOLERANCE));
        }
    }
    if let Some(path) = &labels_path {
        let current = run_label_gate(&LabelGateConfig::default());
        if update {
            if let Err(e) = std::fs::write(path, current.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote label baseline {}", path.display());
        } else {
            let baseline: LabelBaseline = match load_baseline(path, LabelBaseline::from_json) {
                Ok(baseline) => baseline,
                Err(code) => return code,
            };
            points += current.points.len();
            violations.extend(compare_label_gate(&current, &baseline, GATE_TOLERANCE));
        }
    }
    if let Some(path) = &alpha_path {
        let current = run_alpha_gate(&AlphaGateConfig::default());
        if update {
            if let Err(e) = std::fs::write(path, current.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote alpha baseline {}", path.display());
        } else {
            let baseline: AlphaSettledBaseline =
                match load_baseline(path, AlphaSettledBaseline::from_json) {
                    Ok(baseline) => baseline,
                    Err(code) => return code,
                };
            points += current.points.len();
            violations.extend(compare_alpha_gate(&current, &baseline, GATE_TOLERANCE));
        }
    }
    if let Some(path) = &index_path {
        let current = run_index_gate(&IndexGateConfig::default());
        if update {
            if let Err(e) = std::fs::write(path, current.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote index baseline {}", path.display());
        } else {
            let baseline: IndexLatencyBaseline =
                match load_baseline(path, IndexLatencyBaseline::from_json) {
                    Ok(baseline) => baseline,
                    Err(code) => return code,
                };
            points += current.points.len();
            violations.extend(compare_index_gate(&current, &baseline, GATE_TOLERANCE));
        }
    }
    if update {
        return ExitCode::SUCCESS;
    }
    if violations.is_empty() {
        println!(
            "gate passed: {points} points within {:.0}% of the baselines",
            GATE_TOLERANCE * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("gate: {violation}");
        }
        eprintln!("{} gate violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Reads and parses a gate baseline file, mapping failures to the exit
/// code the gate command returns.
fn load_baseline<T>(
    path: &Path,
    from_json: impl Fn(&str) -> Result<T, String>,
) -> Result<T, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!(
            "cannot read {} (create it with `experiments gate ... --update`): {e}",
            path.display()
        );
        ExitCode::FAILURE
    })?;
    from_json(&text).map_err(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

/// Parses a `--workers` list like `1,2,4` (every entry ≥ 1).
fn parse_worker_list(list: &str) -> Option<Vec<usize>> {
    let workers: Option<Vec<usize>> = list
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&w| w >= 1))
        .collect();
    workers.filter(|w| !w.is_empty())
}

/// Writes a report to `DIR/<id>.json` and proves the write lossless by
/// reading the file back and comparing the re-parsed value. Shared by the
/// figure tables and the throughput table, which only differ in their
/// (de)serializers.
fn persist_report<T: PartialEq>(
    dir: &Path,
    id: &str,
    table: &T,
    to_json: impl Fn(&T) -> String,
    from_json: impl Fn(&str) -> Result<T, String>,
) -> Result<(), String> {
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, to_json(table)).map_err(|e| format!("write {}: {e}", path.display()))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read back {}: {e}", path.display()))?;
    let reparsed = from_json(&text).map_err(|e| format!("re-parse {}: {e}", path.display()))?;
    if &reparsed != table {
        return Err(format!(
            "round-trip mismatch: {} differs from the in-memory table",
            path.display()
        ));
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Writes `table` to `DIR/<id>.json` with read-back verification.
fn persist_table(dir: &Path, table: &ExperimentTable) -> Result<(), String> {
    persist_report(
        dir,
        &table.id,
        table,
        ExperimentTable::to_json,
        ExperimentTable::from_json,
    )
}

/// Writes the throughput `table` to `DIR/throughput.json` with the same
/// read-back verification as the figure tables.
fn persist_throughput_table(dir: &Path, table: &ThroughputTable) -> Result<(), String> {
    persist_report(
        dir,
        THROUGHPUT_ID,
        table,
        ThroughputTable::to_json,
        ThroughputTable::from_json,
    )
}

/// Writes the partition `table` to `DIR/partition.json` with the same
/// read-back verification as the figure tables.
fn persist_partition_table(dir: &Path, table: &PartitionTable) -> Result<(), String> {
    persist_report(
        dir,
        PARTITION_ID,
        table,
        PartitionTable::to_json,
        PartitionTable::from_json,
    )
}

/// Writes the prep `table` to `DIR/prep.json` with the same read-back
/// verification as the figure tables.
fn persist_prep_table(dir: &Path, table: &PrepReport) -> Result<(), String> {
    persist_report(
        dir,
        PREP_ID,
        table,
        PrepReport::to_json,
        PrepReport::from_json,
    )
}

/// Writes the alpha `table` to `DIR/alpha.json` with the same read-back
/// verification as the figure tables.
fn persist_alpha_table(dir: &Path, table: &AlphaReport) -> Result<(), String> {
    persist_report(
        dir,
        ALPHA_ID,
        table,
        AlphaReport::to_json,
        AlphaReport::from_json,
    )
}

/// Writes the index `table` to `DIR/index.json` with the same read-back
/// verification as the figure tables.
fn persist_index_table(dir: &Path, table: &IndexReport) -> Result<(), String> {
    persist_report(
        dir,
        INDEX_ID,
        table,
        IndexReport::to_json,
        IndexReport::from_json,
    )
}

/// Writes the observability `table` to `DIR/obs.json` with the same
/// read-back verification as the figure tables.
fn persist_obs_table(dir: &Path, table: &ObsReport) -> Result<(), String> {
    persist_report(dir, OBS_ID, table, ObsReport::to_json, ObsReport::from_json)
}

/// Loads `DIR/<id>.json`, verifying that the stored id matches and that
/// re-serializing the parsed value reproduces the file byte-for-byte (the
/// serializer is deterministic, so byte equality across processes proves a
/// lossless round-trip).
fn load_report<T>(
    dir: &Path,
    expected_id: &str,
    to_json: impl Fn(&T) -> String,
    from_json: impl Fn(&str) -> Result<T, String>,
    id_of: impl Fn(&T) -> &str,
) -> Result<T, String> {
    let path = dir.join(format!("{expected_id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let table = from_json(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    if id_of(&table) != expected_id {
        return Err(format!(
            "{} holds table `{}`, expected `{expected_id}`",
            path.display(),
            id_of(&table)
        ));
    }
    if to_json(&table) != text {
        return Err(format!(
            "{}: re-serializing the parsed table does not reproduce the file",
            path.display()
        ));
    }
    Ok(table)
}

/// Loads each selected table from `DIR/<id>.json`, verifies the lossless
/// round-trip and renders it.
#[allow(clippy::too_many_arguments)]
fn check_tables(
    dir: &Path,
    selected: &[Experiment],
    with_throughput: bool,
    with_partition: bool,
    with_prep: bool,
    with_alpha: bool,
    with_index: bool,
    with_obs: bool,
) -> ExitCode {
    let mut failures = 0u32;
    for experiment in selected {
        match load_report(
            dir,
            experiment.id(),
            ExperimentTable::to_json,
            ExperimentTable::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_throughput {
        match load_report(
            dir,
            THROUGHPUT_ID,
            ThroughputTable::to_json,
            ThroughputTable::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_throughput_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_partition {
        match load_report(
            dir,
            PARTITION_ID,
            PartitionTable::to_json,
            PartitionTable::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_partition_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_prep {
        match load_report(
            dir,
            PREP_ID,
            PrepReport::to_json,
            PrepReport::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_prep_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_alpha {
        match load_report(
            dir,
            ALPHA_ID,
            AlphaReport::to_json,
            AlphaReport::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_alpha_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_index {
        match load_report(
            dir,
            INDEX_ID,
            IndexReport::to_json,
            IndexReport::from_json,
            |t| &t.id,
        ) {
            Ok(table) => println!("{}", render_index_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if with_obs {
        match load_report(dir, OBS_ID, ObsReport::to_json, ObsReport::from_json, |t| {
            &t.id
        }) {
            Ok(table) => println!("{}", render_obs_table(&table)),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} table(s) failed the check");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn expect_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn print_usage() {
    eprintln!(
        "usage: experiments [all | <ids>...] [--scale N] [--queries N] [--latency-ms MS] [--seed S]\n\
         \x20                [--batch N] [--workers LIST] [--out DIR] [--check DIR]\n\
         \x20                [--regions LIST] [--partition-workers N] [--dimacs PATH]\n\
         \x20                [--prep-nodes LIST] [--prep-dims LIST] [--prep-pairs N]\n\
         \x20                [--no-prep-asserts] [--alpha-nodes LIST] [--alpha-dims LIST]\n\
         \x20                [--alpha-pairs N] [--alpha-users N] [--no-alpha-asserts]\n\
         \x20                [--index-nodes LIST] [--index-dims LIST] [--index-pairs N]\n\
         \x20                [--index-users N] [--index-regions N] [--no-index-asserts]\n\
         \x20                [--obs-batch N] [--obs-workers N] [--obs-repeats N]\n\
         \x20                [--no-obs-asserts]\n\
         \x20      experiments gate --baseline FILE [--labels FILE] [--alpha FILE]\n\
         \x20                [--index FILE] [--update]\n\
         experiment ids: {}, {THROUGHPUT_ID}, {PARTITION_ID}, {PREP_ID}, {ALPHA_ID}, {INDEX_ID}, {OBS_ID}\n\
         --out DIR      run the experiments, persist each table to DIR/<id>.json and\n\
         \x20              verify the written file re-parses to the in-memory table\n\
         --check DIR    skip running; load DIR/<id>.json for each selected experiment,\n\
         \x20              verify a lossless round-trip and render the stored tables\n\
         --batch N      number of queries in the {THROUGHPUT_ID}/{PARTITION_ID} batches\n\
         --workers LIST worker counts swept by {THROUGHPUT_ID}, e.g. 1,2,4 (default)\n\
         --read-latency-us N  blocking latency per physical read in the {THROUGHPUT_ID}/\n\
         \x20              {PARTITION_ID} experiments (default 50; 0 = RAM-speed reads)\n\
         --buffer F     buffer fraction of the {THROUGHPUT_ID}/{PARTITION_ID} stores, as a\n\
         \x20              share of the data pages ({THROUGHPUT_ID} defaults to 0.01;\n\
         \x20              {PARTITION_ID} defaults to 0.2 per region shard)\n\
         --regions LIST region counts swept by {PARTITION_ID}, e.g. 1,2,4 (default)\n\
         --partition-workers N  worker threads of the {PARTITION_ID} engine (default 4)\n\
         --dimacs PATH  run {PARTITION_ID}/{PREP_ID} on a DIMACS .gr road network instead\n\
         \x20              of the synthetic topology (costs drawn around the arc weights,\n\
         \x20              clustered facilities placed on it)\n\
         --prep-nodes LIST  network sizes swept by {PREP_ID}, e.g. 250,500 (default)\n\
         --prep-dims LIST   cost dimensions swept by {PREP_ID}, e.g. 2,3,4 (default)\n\
         --prep-pairs N     source/target pairs measured per {PREP_ID} point (default 6)\n\
         --prep-batch N     requests in the {PREP_ID} engine batch (default 72)\n\
         --prep-targets N   distinct targets the {PREP_ID} batch cycles over (default 24)\n\
         --prep-cache N     {PREP_ID} prep-table cache capacity (default 32; keep it at\n\
         \x20              least the target count or the warm run degrades to cold)\n\
         --no-prep-asserts  skip {PREP_ID}'s ≥2x-label-reduction and warm>cold QPS\n\
         \x20              assertions (result-equality assertions always run)\n\
         --alpha-nodes LIST  network sizes swept by {ALPHA_ID}, e.g. 250,500 (default)\n\
         --alpha-dims LIST   cost dimensions swept by {ALPHA_ID}, e.g. 2,3,4 (default)\n\
         --alpha-pairs N     source/target pairs measured per {ALPHA_ID} point (default 6)\n\
         --alpha-users N     preference vectors per {ALPHA_ID} pair (default 6)\n\
         --alpha-batch N     requests in the {ALPHA_ID} engine batch (default 96)\n\
         --alpha-targets N   distinct targets the {ALPHA_ID} batch cycles over (default 24)\n\
         --alpha-cache N     {ALPHA_ID} prep-table cache capacity (default 32)\n\
         --no-alpha-asserts  skip {ALPHA_ID}'s ≥2x-settled-reduction, ≥10x skyline\n\
         \x20              advantage and warm>cold QPS assertions (A* = Dijkstra\n\
         \x20              byte-identical routes are always asserted)\n\
         --index-nodes LIST  network sizes swept by {INDEX_ID}, e.g. 150,250 (default)\n\
         --index-dims LIST   cost dimensions swept by {INDEX_ID}, e.g. 2,3,4 (default)\n\
         --index-pairs N     source/target pairs measured per {INDEX_ID} point (default 6)\n\
         --index-users N     preference vectors per {INDEX_ID} pair (default 6)\n\
         --index-regions N   parallel build regions of the {INDEX_ID} hierarchy\n\
         \x20              (default 1 = sequential; partitioned builds need a larger\n\
         \x20              bundle cap to stay exact at d = 4)\n\
         --no-index-asserts  skip {INDEX_ID}'s exact-build and >=10x cold settled-node\n\
         \x20              reduction assertions (byte-identical routes vs the prep\n\
         \x20              tier are always asserted)\n\
         --obs-batch N      queries in the {OBS_ID} experiment's batch (default 32)\n\
         --obs-workers N    engine workers of the {OBS_ID} experiment (default 4)\n\
         --obs-repeats N    interleaved best-of rounds per {OBS_ID} mode (default 3)\n\
         --no-obs-asserts   skip {OBS_ID}'s <=2% disabled-overhead assertion\n\
         \x20              (identical-fingerprint and trace round-trip assertions\n\
         \x20              always run); with --out, {OBS_ID} also writes the enabled\n\
         \x20              run's chrome://tracing document to DIR/obs-trace.json\n\
         gate           re-measure mean logical page reads of every figure point\n\
         \x20              (--baseline), the {PREP_ID} experiment's mean label counts\n\
         \x20              (--labels), the {ALPHA_ID} tier's mean settled nodes\n\
         \x20              (--alpha) and/or the {INDEX_ID} settled-node and arc-entry\n\
         \x20              counters (--index) and fail on >{:.0}% regression vs the\n\
         \x20              checked-in JSON",
        Experiment::all()
            .iter()
            .map(|e| e.id())
            .collect::<Vec<_>>()
            .join(", "),
        GATE_TOLERANCE * 100.0
    );
}
