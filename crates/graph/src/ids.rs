//! Strongly-typed identifiers for nodes, edges and facilities.
//!
//! All identifiers are thin wrappers around `u32`, dense and zero-based: the
//! `i`-th node added to a [`crate::GraphBuilder`] receives `NodeId(i)`. The dense
//! property is relied upon by `mcn-storage` (records are addressed by id) and by
//! the expansion algorithms (visited sets are flat bit vectors).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, suitable for indexing dense arrays.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize, "identifier overflow");
                Self(raw as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a network node (road intersection).
    NodeId,
    "v"
);
define_id!(
    /// Identifier of a network edge (road segment).
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of a facility (point of interest) lying on an edge.
    FacilityId,
    "p"
);
define_id!(
    /// Identifier of a graph region produced by the partitioner (see
    /// `mcn_graph::partition`). Regions shard the disk-resident store and
    /// drive region-affine query scheduling in `mcn-engine`.
    RegionId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw() {
        let n = NodeId::new(42);
        assert_eq!(n.raw(), 42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(NodeId::from(42usize), n);
    }

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
        assert_eq!(FacilityId::new(1).to_string(), "p1");
        assert_eq!(format!("{:?}", FacilityId::new(1)), "p1");
    }

    #[test]
    fn ordering_follows_raw_index() {
        let mut v = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn hashable_and_distinct_types() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(0));
        set.insert(NodeId::new(0));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(EdgeId::default().raw(), 0);
    }
}
