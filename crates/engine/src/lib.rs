//! # mcn-engine
//!
//! A **concurrent multi-query execution engine** over a shared, read-only
//! store — a monolithic [`MCNStore`](mcn_storage::MCNStore) (the default)
//! or any other [`StoreView`](mcn_storage::StoreView), e.g. the
//! region-sharded [`PartitionedStore`](mcn_storage::PartitionedStore).
//!
//! The paper evaluates one query at a time; a production service faces many
//! skyline/top-k queries in flight against one network. Everything below the
//! engine is already built for that: the store is immutable once built, the
//! buffer pool is lock-striped ([`mcn_storage::BufferPool`]), and the
//! expansion/core layers are `Send` over any store view. The engine adds the
//! missing scheduling layer:
//!
//! * [`QueryRequest`] — a skyline, batch top-k, incremental top-k,
//!   path-skyline, or scalarized alpha-path query, self-contained and
//!   cheap to clone.
//! * [`QueryEngine`] — a bounded pool of worker threads draining a batch of
//!   requests FIFO; each query runs the ordinary single-query algorithm, so
//!   per-query results are **identical** to serial execution no matter how
//!   many workers race over the shared buffer pool.
//! * [`QueryEngine::run_batch_with_regions`] — **region-affine** scheduling
//!   for partitioned stores: queries are tagged with their seed region,
//!   workers prefer to stay on the region they just served (keeping its
//!   buffer pool hot), spread to idle regions otherwise, and fall back to
//!   FIFO so no request starves. Results stay byte-identical in both modes.
//! * [`QueryOutcome`] / [`BatchStats`] — per-query statistics plus aggregate
//!   throughput (QPS, consistent I/O deltas from the striped pool, affine
//!   claim counters).
//! * [`PathContext`] — attached via [`QueryEngine::with_path_context`],
//!   serves [`QueryRequest::PathSkyline`] (multi-criteria Pareto path) and
//!   [`QueryRequest::AlphaPath`] (per-user scalarized fastest path)
//!   requests with the ParetoPrep-pruned search of `mcn-mcpp`, sharing a
//!   bounded LRU cache of `mcn-prep` tables (one backward scan per target)
//!   across workers and batches.
//!
//! # Determinism
//!
//! Query *results* depend only on the store contents, never on buffer state
//! or scheduling, so `run_batch` returns outcome `i` for request `i` with
//! byte-identical output at any worker count ([`QueryOutput::fingerprint`]
//! makes that checkable). Statistics are the exception: per-query `stats.io`
//! is a store-wide counter delta, which overlapping queries pollute — it is
//! only meaningful at `workers == 1`. Use [`BatchStats::io`] (a consistent
//! before/after snapshot pair) for aggregate accounting at any worker count.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod context;
mod engine;
mod request;

pub use context::PathContext;
pub use engine::{BatchResult, BatchStats, QueryEngine};
pub use request::{QueryOutcome, QueryOutput, QueryRequest};

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send`/`Sync` (the `missing-send-sync-assert` lint requires
/// one such assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
