//! `mcn-analyze`: static enforcement of the invariants this reproduction
//! lives by — byte-identical skylines and strict lock discipline.
//!
//! The regression gates (`logical_reads.json`, `labels.json`) catch
//! determinism bugs *after* they ship; this pass catches the bug classes
//! at their source, mechanically, before review: locks held across
//! physical reads (the PR 3 incident), hash-order iteration feeding
//! fingerprints or baselines, exact float comparison on deflated bounds
//! (the PR 5 incident), panicking workers, ad-hoc threads, and
//! concurrency-facing types without compile-time `Send`/`Sync` proof.
//!
//! The analysis is dependency-free: a hand-rolled lexer (no syn/quote —
//! the build environment is offline), a symbol [`resolver`] and explicit
//! [`callgraph`], plus rules in [`rules`]. The reachability rules
//! (`lock-order`, `hot-path-alloc`, `nondet-iteration`) run over resolved
//! call edges. Findings diff against the checked-in
//! `analyze-baseline.json` exactly like the bench gates, and the
//! acquisition-order graph diffs against `lock-order.json`; suppression is
//! a reasoned comment:
//!
//! ```text
//! // mcn-lint: allow(lock-across-io, reason = "file handle is the lock")
//! ```
//!
//! Run it with `cargo run -p mcn-analyze -- check`.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod resolver;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fmt;
use std::fs;
use std::path::Path;

use baseline::{Baseline, Diff};
use serde::{Deserialize, Serialize};
use workspace::Workspace;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name (see [`rules::ALL_RULES`]).
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line, for the report and baseline matching.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.excerpt)
    }
}

/// The outcome of a full `check` run.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Every finding that survived allow-suppression, baseline included.
    pub findings: Vec<Finding>,
    /// The diff against the baseline; clean iff both sides are empty.
    pub diff: Diff,
    /// Every lock class discovered in the workspace, sorted by id.
    pub lock_classes: Vec<locks::LockClass>,
    /// The current acquisition-order edges (allow-filtered, deduped).
    pub lock_edges: Vec<locks::LockEdge>,
    /// Edges not present in the checked-in `lock-order.json`.
    pub lock_new: Vec<locks::LockEdge>,
    /// Checked-in edges that no longer occur.
    pub lock_stale: Vec<locks::LockEdge>,
    /// Files analyzed, for the report.
    pub files: usize,
}

impl CheckOutcome {
    /// True when there is nothing new and nothing stale — findings *and*
    /// lock-order edges.
    pub fn is_clean(&self) -> bool {
        self.diff.new.is_empty()
            && self.diff.stale.is_empty()
            && self.lock_new.is_empty()
            && self.lock_stale.is_empty()
    }
}

/// Runs the full pass: load the workspace at `root`, run every rule, diff
/// findings against the baseline at `baseline_path` and acquisition edges
/// against `lock_path` (a missing file is empty on either side). With
/// `update`, rewrites both files to accept exactly the current state
/// instead of diffing.
pub fn check(
    root: &Path,
    baseline_path: &Path,
    lock_path: &Path,
    update: bool,
) -> Result<CheckOutcome, String> {
    let ws = Workspace::load(root).map_err(|e| format!("loading workspace: {e}"))?;
    let analysis = rules::analyze(&ws);
    let findings = analysis.findings;
    let files = ws.files.len();
    if update {
        let b = Baseline::from_findings(&findings);
        fs::write(baseline_path, b.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        let lf = locks::LockOrderFile {
            edges: analysis.lock_edges.clone(),
        };
        fs::write(lock_path, lf.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", lock_path.display()))?;
        return Ok(CheckOutcome {
            diff: Diff::default(),
            lock_classes: analysis.lock_classes,
            lock_edges: analysis.lock_edges,
            lock_new: Vec::new(),
            lock_stale: Vec::new(),
            findings,
            files,
        });
    }
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(text) => Baseline::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let diff = baseline.diff(&findings);
    let lock_file = match fs::read_to_string(lock_path) {
        Ok(text) => locks::LockOrderFile::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", lock_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => locks::LockOrderFile::default(),
        Err(e) => return Err(format!("reading {}: {e}", lock_path.display())),
    };
    let (lock_new, lock_stale) = lock_file.diff(&analysis.lock_edges);
    Ok(CheckOutcome {
        findings,
        diff,
        lock_classes: analysis.lock_classes,
        lock_edges: analysis.lock_edges,
        lock_new,
        lock_stale,
        files,
    })
}
