//! The nine experiments of the paper's Section VI, as parameter sweeps.

use crate::measure::{measure_point, PointMeasurement, QueryKind};
use crate::report::ExperimentTable;
use mcn_gen::{CostDistribution, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Global configuration of an experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scale-down divider applied to the paper's network/facility/query sizes
    /// (1 = the paper's full configuration, 50 = quick default).
    pub scale: usize,
    /// Seconds charged per physical page read (random-read latency model).
    pub latency: f64,
    /// Override for the number of query locations per data point
    /// (`None` = the scaled paper default).
    pub queries: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 50,
            latency: 0.005,
            queries: None,
            seed: 2010,
        }
    }
}

impl ExperimentConfig {
    /// The workload spec at this configuration's scale with the paper's
    /// default parameters (|P| = 100 K / scale, d = 4, anti-correlated).
    pub fn base_spec(&self) -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_scaled(self.scale);
        spec.seed = self.seed;
        if let Some(q) = self.queries {
            spec.queries = q;
        }
        spec
    }

    /// The paper's facility-count sweep (25 K … 200 K), scaled.
    pub fn facility_sweep(&self) -> Vec<usize> {
        [25_000usize, 50_000, 100_000, 150_000, 200_000]
            .iter()
            .map(|p| (p / self.scale).max(10))
            .collect()
    }
}

/// One reproducible experiment (figure) of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Experiment {
    /// Fig. 8(a): skyline processing time vs |P|.
    SkylineFacilities,
    /// Fig. 8(b): skyline processing time vs number of cost types d.
    SkylineCostTypes,
    /// Fig. 9(a): skyline processing time vs cost distribution.
    SkylineDistribution,
    /// Fig. 9(b): skyline processing time vs buffer size.
    SkylineBuffer,
    /// Fig. 10(a): top-k processing time vs |P|.
    TopKFacilities,
    /// Fig. 10(b): top-k processing time vs number of cost types d.
    TopKCostTypes,
    /// Fig. 11(a): top-k processing time vs cost distribution.
    TopKDistribution,
    /// Fig. 11(b): top-k processing time vs buffer size.
    TopKBuffer,
    /// Fig. 12: top-k processing time vs k.
    TopKK,
}

impl Experiment {
    /// All experiments in paper order.
    pub fn all() -> [Experiment; 9] {
        [
            Experiment::SkylineFacilities,
            Experiment::SkylineCostTypes,
            Experiment::SkylineDistribution,
            Experiment::SkylineBuffer,
            Experiment::TopKFacilities,
            Experiment::TopKCostTypes,
            Experiment::TopKDistribution,
            Experiment::TopKBuffer,
            Experiment::TopKK,
        ]
    }

    /// Command-line identifier (e.g. `sky-p`, `topk-k`).
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::SkylineFacilities => "sky-p",
            Experiment::SkylineCostTypes => "sky-d",
            Experiment::SkylineDistribution => "sky-dist",
            Experiment::SkylineBuffer => "sky-buf",
            Experiment::TopKFacilities => "topk-p",
            Experiment::TopKCostTypes => "topk-d",
            Experiment::TopKDistribution => "topk-dist",
            Experiment::TopKBuffer => "topk-buf",
            Experiment::TopKK => "topk-k",
        }
    }

    /// Paper figure the experiment reproduces.
    pub fn figure(&self) -> &'static str {
        match self {
            Experiment::SkylineFacilities => "Fig. 8(a) — skyline: effect of |P|",
            Experiment::SkylineCostTypes => "Fig. 8(b) — skyline: effect of d",
            Experiment::SkylineDistribution => "Fig. 9(a) — skyline: effect of cost distribution",
            Experiment::SkylineBuffer => "Fig. 9(b) — skyline: effect of buffer size",
            Experiment::TopKFacilities => "Fig. 10(a) — top-k: effect of |P|",
            Experiment::TopKCostTypes => "Fig. 10(b) — top-k: effect of d",
            Experiment::TopKDistribution => "Fig. 11(a) — top-k: effect of cost distribution",
            Experiment::TopKBuffer => "Fig. 11(b) — top-k: effect of buffer size",
            Experiment::TopKK => "Fig. 12 — top-k: effect of k",
        }
    }

    /// Parses a command-line identifier.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all().into_iter().find(|e| e.id() == id)
    }

    /// Runs the experiment sweep and returns its table.
    pub fn run(&self, config: &ExperimentConfig) -> ExperimentTable {
        ExperimentTable::from_points(
            self.id(),
            self.figure(),
            self.x_axis(),
            &self.run_points(config),
            config.latency,
        )
    }

    /// Runs the experiment sweep and returns the raw per-point measurements
    /// (the table's rows keep only the charged-time view; the regression
    /// gate needs the deterministic logical-read means).
    pub fn run_points(&self, config: &ExperimentConfig) -> Vec<PointMeasurement> {
        let base = config.base_spec();
        let default_buffer = 0.01;
        let default_k = 4;
        match self {
            Experiment::SkylineFacilities | Experiment::TopKFacilities => {
                let kind = self.kind(default_k);
                config
                    .facility_sweep()
                    .into_iter()
                    .map(|p| {
                        let spec = WorkloadSpec {
                            facilities: p,
                            ..base.clone()
                        };
                        measure_point(format!("|P| = {p}"), &spec, default_buffer, kind)
                    })
                    .collect()
            }
            Experiment::SkylineCostTypes | Experiment::TopKCostTypes => {
                let kind = self.kind(default_k);
                (2..=5)
                    .map(|d| {
                        let spec = WorkloadSpec {
                            cost_types: d,
                            ..base.clone()
                        };
                        measure_point(format!("d = {d}"), &spec, default_buffer, kind)
                    })
                    .collect()
            }
            Experiment::SkylineDistribution | Experiment::TopKDistribution => {
                let kind = self.kind(default_k);
                [
                    CostDistribution::AntiCorrelated,
                    CostDistribution::Independent,
                    CostDistribution::Correlated,
                ]
                .into_iter()
                .map(|dist| {
                    let spec = WorkloadSpec {
                        distribution: dist,
                        ..base.clone()
                    };
                    measure_point(dist.label(), &spec, default_buffer, kind)
                })
                .collect()
            }
            Experiment::SkylineBuffer | Experiment::TopKBuffer => {
                let kind = self.kind(default_k);
                [0.0, 0.005, 0.01, 0.015, 0.02]
                    .into_iter()
                    .map(|buffer| {
                        measure_point(
                            format!("buffer = {:.1}%", buffer * 100.0),
                            &base,
                            buffer,
                            kind,
                        )
                    })
                    .collect()
            }
            Experiment::TopKK => [1usize, 2, 4, 8, 16]
                .into_iter()
                .map(|k| {
                    measure_point(
                        format!("k = {k}"),
                        &base,
                        default_buffer,
                        QueryKind::TopK(k),
                    )
                })
                .collect(),
        }
    }

    fn kind(&self, default_k: usize) -> QueryKind {
        match self {
            Experiment::SkylineFacilities
            | Experiment::SkylineCostTypes
            | Experiment::SkylineDistribution
            | Experiment::SkylineBuffer => QueryKind::Skyline,
            _ => QueryKind::TopK(default_k),
        }
    }

    fn x_axis(&self) -> &'static str {
        match self {
            Experiment::SkylineFacilities | Experiment::TopKFacilities => "|P|",
            Experiment::SkylineCostTypes | Experiment::TopKCostTypes => "d",
            Experiment::SkylineDistribution | Experiment::TopKDistribution => "distribution",
            Experiment::SkylineBuffer | Experiment::TopKBuffer => "buffer",
            Experiment::TopKK => "k",
        }
    }
}

/// Runs every experiment and returns the tables in paper order.
pub fn all_experiments(config: &ExperimentConfig) -> Vec<ExperimentTable> {
    Experiment::all().iter().map(|e| e.run(config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        assert_eq!(Experiment::from_id("nope"), None);
    }

    #[test]
    fn config_scaling_shrinks_the_sweep() {
        let config = ExperimentConfig {
            scale: 500,
            ..Default::default()
        };
        let sweep = config.facility_sweep();
        assert_eq!(sweep.len(), 5);
        assert!(sweep.iter().all(|&p| p >= 10 && p <= 400));
        assert_eq!(config.base_spec().cost_types, 4);
    }

    #[test]
    fn one_small_experiment_end_to_end() {
        // Heavily scaled down so the test stays fast; exercises the whole
        // sweep machinery for one skyline figure and one top-k figure.
        let config = ExperimentConfig {
            scale: 2000,
            queries: Some(2),
            ..Default::default()
        };
        let table = Experiment::SkylineCostTypes.run(&config);
        assert_eq!(table.rows.len(), 4); // d = 2..5
        assert!(table.rows.iter().all(|r| r.lsa_reads > 0.0));
        let table = Experiment::TopKK.run(&config);
        assert_eq!(table.rows.len(), 5); // k = 1, 2, 4, 8, 16
    }
}
