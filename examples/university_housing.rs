//! The paper's second motivating scenario: choose a residential block for
//! university housing. Students and instructors either walk or drive, and the
//! shortest walking path differs from the shortest driving path (one-way
//! streets, pedestrian-only shortcuts). Each edge therefore carries two cost
//! types — walking minutes and driving minutes — and the decision is an MCN
//! skyline / top-k query over the candidate blocks.
//!
//! This example runs on a *generated* city-scale network so it also shows the
//! workload-generation API.
//!
//! ```text
//! cargo run --release --example university_housing
//! ```

use mcn::core::prelude::*;
use mcn::gen::{generate_workload, CostDistribution, WorkloadSpec};
use mcn::storage::{BufferConfig, MCNStore};
use std::sync::Arc;

fn main() {
    // A mid-sized city: ~10 000 intersections, 800 candidate housing blocks
    // clustered in a handful of neighbourhoods, two cost types with
    // anti-correlated behaviour (walkable shortcuts are slow to drive and
    // vice versa).
    let spec = WorkloadSpec {
        nodes: 10_000,
        facilities: 800,
        cost_types: 2,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 6,
        queries: 1,
        seed: 7,
    };
    let workload = generate_workload(&spec);
    let store =
        Arc::new(MCNStore::build_in_memory(&workload.graph, BufferConfig::Fraction(0.01)).unwrap());
    // The university sits at the workload's (random) query node.
    let university = workload.queries[0];
    println!(
        "Network: {} nodes, {} edges, {} candidate blocks",
        workload.graph.num_nodes(),
        workload.graph.num_edges(),
        workload.graph.num_facilities()
    );

    // Every block that is not dominated in (walking time, driving time).
    let skyline = skyline_query(&store, university, Algorithm::Cea);
    println!(
        "\n{} blocks are on the skyline (best trade-offs between walking and driving):",
        skyline.facilities.len()
    );
    for member in skyline.facilities.iter().take(5) {
        println!(
            "  {}  walk {:.0}  drive {:.0}",
            member.facility, member.costs[0], member.costs[1]
        );
    }
    if skyline.facilities.len() > 5 {
        println!("  … and {} more", skyline.facilities.len() - 5);
    }

    // 70 % of residents walk, 30 % drive → weighted top-3.
    let mix = WeightedSum::new(vec![0.7, 0.3]);
    let top = topk_query(&store, university, mix, 3, Algorithm::Cea);
    println!("\nTop-3 blocks for a 70 % walking / 30 % driving population:");
    for (rank, entry) in top.entries.iter().enumerate() {
        println!(
            "  #{} {}  score {:.1}  (walk {:.0}, drive {:.0})",
            rank + 1,
            entry.facility,
            entry.score,
            entry.costs[0],
            entry.costs[1]
        );
    }

    // The same query processed by LSA and CEA returns the same answer; the
    // difference is purely how many pages each reads (the paper's Figure 10).
    store.buffer().clear();
    let lsa = topk_query(
        &store,
        university,
        WeightedSum::new(vec![0.7, 0.3]),
        3,
        Algorithm::Lsa,
    );
    store.buffer().clear();
    let cea = topk_query(
        &store,
        university,
        WeightedSum::new(vec![0.7, 0.3]),
        3,
        Algorithm::Cea,
    );
    println!(
        "\nI/O: LSA missed the buffer {} times, CEA {} times ({}x fewer)",
        lsa.stats.io.buffer_misses,
        cea.stats.io.buffer_misses,
        lsa.stats.io.buffer_misses as f64 / cea.stats.io.buffer_misses.max(1) as f64
    );
}
