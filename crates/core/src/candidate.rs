//! The candidate set shared by the skyline and top-k algorithms.
//!
//! During the growing stage every facility returned by any expansion becomes a
//! *candidate*, with the costs discovered so far recorded and the rest
//! unknown. A candidate whose `d` costs are all known is **pinned**: its cost
//! vector is complete and (for the skyline) it can be reported immediately.

use mcn_graph::{dominance::pinned_dominates_partial, CostVec, FacilityId};
use std::collections::BTreeMap;

/// Partially known costs of a candidate facility.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The facility.
    pub facility: FacilityId,
    /// Known costs per cost type (`None` = the expansion for that cost type
    /// has not reached the facility yet).
    pub known: Vec<Option<f64>>,
}

impl Candidate {
    fn new(facility: FacilityId, d: usize) -> Self {
        Self {
            facility,
            known: vec![None; d],
        }
    }

    /// True iff every cost is known.
    pub fn is_pinned(&self) -> bool {
        self.known.iter().all(Option::is_some)
    }

    /// The complete cost vector (only valid when pinned).
    ///
    /// # Panics
    /// Panics if the candidate is not pinned.
    pub fn cost_vector(&self) -> CostVec {
        assert!(self.is_pinned(), "cost vector requested before pinning");
        self.known.iter().map(|c| c.unwrap()).collect()
    }

    /// Number of costs already known.
    pub fn known_count(&self) -> usize {
        self.known.iter().filter(|c| c.is_some()).count()
    }
}

/// The candidate set `CS` of the paper, keyed by facility.
///
/// Ordered by facility id on purpose: [`CandidateSet::iter`] feeds skyline
/// emission (leftover resolution) and the shrinking-stage facility index,
/// so iteration order must be identical run-to-run for the fingerprints
/// and gate baselines to stay byte-stable. Candidate sets are small, so
/// the `BTreeMap` costs nothing measurable over a hash map.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    d: usize,
    candidates: BTreeMap<FacilityId, Candidate>,
    /// Highest number of simultaneous candidates, for statistics.
    peak: usize,
    /// Total number of distinct facilities ever admitted.
    admitted: usize,
}

impl CandidateSet {
    /// Creates an empty candidate set for `d` cost types.
    pub fn new(d: usize) -> Self {
        Self {
            d,
            candidates: BTreeMap::new(),
            peak: 0,
            admitted: 0,
        }
    }

    /// Number of candidates currently tracked.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True iff no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Largest size the set ever reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total number of distinct facilities ever admitted.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// True iff `facility` is currently a candidate.
    pub fn contains(&self, facility: FacilityId) -> bool {
        self.candidates.contains_key(&facility)
    }

    /// Read access to a candidate.
    pub fn get(&self, facility: FacilityId) -> Option<&Candidate> {
        self.candidates.get(&facility)
    }

    /// Iterates over the current candidates.
    pub fn iter(&self) -> impl Iterator<Item = &Candidate> + '_ {
        self.candidates.values()
    }

    /// Records that expansion `cost_type` reached `facility` at cost `cost`.
    ///
    /// If `admit_new` is true (growing stage) an unseen facility is inserted;
    /// otherwise (shrinking stage) unseen facilities are ignored. Returns a
    /// reference to the candidate when it is now tracked.
    pub fn record(
        &mut self,
        facility: FacilityId,
        cost_type: usize,
        cost: f64,
        admit_new: bool,
    ) -> Option<&Candidate> {
        debug_assert!(cost_type < self.d);
        if !self.candidates.contains_key(&facility) {
            if !admit_new {
                return None;
            }
            self.candidates
                .insert(facility, Candidate::new(facility, self.d));
            self.admitted += 1;
            self.peak = self.peak.max(self.candidates.len());
        }
        let entry = self.candidates.get_mut(&facility).expect("just inserted");
        // Expansions emit each facility at most once per cost type, and always
        // at its final network distance; keep the first (smallest) value.
        if entry.known[cost_type].is_none() {
            entry.known[cost_type] = Some(cost);
        }
        Some(&*entry)
    }

    /// Removes and returns a candidate (e.g. when it gets pinned).
    pub fn remove(&mut self, facility: FacilityId) -> Option<Candidate> {
        self.candidates.remove(&facility)
    }

    /// Removes every candidate dominated by the pinned cost vector `pinned`
    /// (using the partial-information dominance rule of Section IV-A) and
    /// returns how many were eliminated, along with the number of dominance
    /// checks performed.
    pub fn eliminate_dominated(&mut self, pinned: &CostVec) -> (usize, usize) {
        let mut checks = 0;
        let before = self.candidates.len();
        self.candidates.retain(|_, cand| {
            checks += 1;
            !pinned_dominates_partial(pinned, &cand.known)
        });
        (before - self.candidates.len(), checks)
    }

    /// True iff every remaining candidate already knows its `cost_type` cost —
    /// the condition under which the paper stops the corresponding expansion
    /// early (Section IV-A).
    pub fn all_know_cost(&self, cost_type: usize) -> bool {
        self.candidates
            .values()
            .all(|c| c.known[cost_type].is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_pin() {
        let mut cs = CandidateSet::new(2);
        assert!(cs.is_empty());
        cs.record(FacilityId::new(1), 0, 5.0, true);
        assert_eq!(cs.len(), 1);
        assert!(!cs.get(FacilityId::new(1)).unwrap().is_pinned());
        let c = cs.record(FacilityId::new(1), 1, 7.0, true).unwrap();
        assert!(c.is_pinned());
        assert_eq!(c.cost_vector().as_slice(), &[5.0, 7.0]);
        assert_eq!(cs.admitted(), 1);
    }

    #[test]
    fn shrinking_stage_ignores_new_facilities() {
        let mut cs = CandidateSet::new(2);
        assert!(cs.record(FacilityId::new(9), 0, 1.0, false).is_none());
        assert!(cs.is_empty());
        cs.record(FacilityId::new(9), 0, 1.0, true);
        // Updating an existing candidate works even when admission is closed.
        assert!(cs.record(FacilityId::new(9), 1, 2.0, false).is_some());
    }

    #[test]
    fn duplicate_records_keep_first_value() {
        let mut cs = CandidateSet::new(2);
        cs.record(FacilityId::new(3), 0, 4.0, true);
        cs.record(FacilityId::new(3), 0, 9.0, true);
        assert_eq!(cs.get(FacilityId::new(3)).unwrap().known[0], Some(4.0));
    }

    #[test]
    fn elimination_uses_partial_dominance() {
        let mut cs = CandidateSet::new(2);
        // Candidate a: known (6, ?) — dominated by pinned (5, 7).
        cs.record(FacilityId::new(0), 0, 6.0, true);
        // Candidate b: known (?, 3) — survives because 3 < 7.
        cs.record(FacilityId::new(1), 1, 3.0, true);
        let pinned = CostVec::from_slice(&[5.0, 7.0]);
        let (eliminated, checks) = cs.eliminate_dominated(&pinned);
        assert_eq!(eliminated, 1);
        assert_eq!(checks, 2);
        assert!(cs.contains(FacilityId::new(1)));
        assert!(!cs.contains(FacilityId::new(0)));
    }

    #[test]
    fn early_expansion_stop_condition() {
        let mut cs = CandidateSet::new(2);
        cs.record(FacilityId::new(0), 0, 1.0, true);
        cs.record(FacilityId::new(1), 0, 2.0, true);
        assert!(cs.all_know_cost(0));
        assert!(!cs.all_know_cost(1));
        cs.record(FacilityId::new(0), 1, 5.0, true);
        cs.record(FacilityId::new(1), 1, 5.0, true);
        assert!(cs.all_know_cost(1));
    }

    #[test]
    fn iteration_is_ordered_by_facility() {
        let mut cs = CandidateSet::new(1);
        for i in [5u32, 1, 9, 3] {
            cs.record(FacilityId::new(i), 0, f64::from(i), true);
        }
        let order: Vec<u32> = cs.iter().map(|c| c.facility.raw()).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn peak_tracks_maximum_size() {
        let mut cs = CandidateSet::new(1);
        for i in 0..5 {
            cs.record(FacilityId::new(i), 0, i as f64, true);
        }
        let pinned = CostVec::from_slice(&[-1.0]);
        // Everything is dominated by a (hypothetical) better vector.
        cs.eliminate_dominated(&pinned.element_max(&CostVec::from_slice(&[0.0])));
        assert_eq!(cs.peak(), 5);
        assert_eq!(cs.admitted(), 5);
    }
}
