//! The `alpha` experiment: the scalarized preference *serving* tier.
//!
//! For every swept point — cost dimensions d = 2..4 × network sizes — the
//! experiment draws seeded source/target pairs and a pool of per-user
//! preference vectors α (via `mcn_gen::generate_preferences`), then
//! measures the same α-optimal route three ways:
//!
//! * **dijkstra** — `scalarized_path`, the heuristic-free binary-heap
//!   Dijkstra over α-collapsed edge costs;
//! * **astar** — `scalarized_path_astar`, driven by h(v) = α·L(v) from a
//!   [`PrepTable`] backward scan (built once per target and amortized
//!   across the user pool — the serving-tier regime);
//! * **engine** — a batch of [`QueryRequest::AlphaPath`] requests over a
//!   pool of repeated targets, served by the [`QueryEngine`] through a
//!   [`PathContext`]'s bounded prep cache, cold vs warm.
//!
//! The full `pareto_paths_prepped` skyline also runs on every pair, putting
//! the two tiers side by side: the skyline *explores* every Pareto-optimal
//! route, the scalarized query *serves* the single best route for one
//! user's α at a fraction of the labels.
//!
//! Asserted on every run (not just reported):
//!
//! * every (pair, α) query's A* route is **byte-identical** to plain
//!   Dijkstra's (edge list and the raw bits of the scalarized total);
//! * cold-cache and warm-cache engine batches are fingerprint-identical;
//! * with `assert_improvements` (the default): A* settles at least
//!   [`MIN_SETTLED_REDUCTION`]× fewer nodes than Dijkstra, the skyline
//!   creates at least [`MIN_SKYLINE_ADVANTAGE`]× more labels than A*
//!   settles nodes on the same pairs, and the warm engine batch beats the
//!   cold one.

use crate::report::json_safe;
use mcn_alpha::{scalarized_path, scalarized_path_astar, Preference, PreferenceEstimator};
use mcn_engine::{PathContext, QueryEngine, QueryRequest};
use mcn_gen::{
    generate_preferences, generate_workload, CostDistribution, PreferenceSpec, WorkloadSpec,
};
use mcn_graph::{MultiCostGraph, NodeId};
use mcn_mcpp::pareto_paths_prepped;
use mcn_obs::default_clock;
use mcn_prep::PrepTable;
use mcn_storage::{BufferConfig, MCNStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of the alpha experiment in the `experiments` binary and its
/// report file name (`<id>.json`).
pub const ALPHA_ID: &str = "alpha";

/// Minimum factor by which the prep-backed A* must shrink the mean settled
/// nodes against heuristic-free Dijkstra (the acceptance bar of the
/// serving tier's heuristic).
pub const MIN_SETTLED_REDUCTION: f64 = 2.0;

/// Minimum factor between the skyline tier's labels created and the
/// scalarized tier's nodes settled on the same (source, target) pairs —
/// the "orders of magnitude cheaper" claim, enforced at 10×.
pub const MIN_SKYLINE_ADVANTAGE: f64 = 10.0;

/// Configuration of an alpha run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaConfig {
    /// Network sizes (node counts) swept; ignored when the topology comes
    /// from a file.
    pub nodes: Vec<usize>,
    /// Cost dimensions swept.
    pub dims: Vec<usize>,
    /// Source/target pairs measured per point.
    pub pairs: usize,
    /// Per-user preference vectors in the pool; every pair is queried once
    /// per user.
    pub users: usize,
    /// Requests in the engine batch.
    pub batch: usize,
    /// Distinct targets the engine batch cycles over (the cache's reuse).
    pub targets: usize,
    /// Worker threads of the engine runs.
    pub workers: usize,
    /// Capacity of the engine's prep-table cache.
    pub cache_capacity: usize,
    /// Observed routes fed to the [`PreferenceEstimator`] per point (each
    /// generated under a hidden α from the pool).
    pub estimator_routes: usize,
    /// Master seed for the workload, pair, α-pool and batch draws.
    pub seed: u64,
    /// Assert the settled-node reduction, the skyline advantage and
    /// warm > cold QPS (disable for timing-hostile unit-test environments;
    /// equality assertions always run).
    pub assert_improvements: bool,
    /// Where the network came from: `"synthetic"` or a loaded file path.
    pub source: String,
}

impl Default for AlphaConfig {
    fn default() -> Self {
        Self {
            nodes: vec![250, 500],
            dims: vec![2, 3, 4],
            pairs: 6,
            users: 6,
            // Same shape as the prep experiment's engine batch: four-fold
            // within-batch reuse per target and a cache that holds the
            // whole pool, so cold pays one scan per target and warm none.
            batch: 96,
            targets: 24,
            workers: 4,
            cache_capacity: 32,
            estimator_routes: 4,
            seed: 2010,
            assert_improvements: true,
            source: "synthetic".to_string(),
        }
    }
}

/// One row of the alpha table: one cost dimension × one network size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaRow {
    /// Cost dimensions of this row.
    pub dims: usize,
    /// Nodes of the swept network.
    pub nodes: usize,
    /// Source/target pairs behind the means.
    pub pairs: usize,
    /// Preference vectors per pair.
    pub users: usize,
    /// Mean nodes settled per query by heuristic-free Dijkstra.
    pub dijkstra_settled: f64,
    /// Mean nodes settled per query by prep-backed A*.
    pub astar_settled: f64,
    /// `dijkstra_settled / astar_settled`.
    pub settled_reduction: f64,
    /// Mean labels created per pair by the `pareto_paths_prepped` skyline
    /// on the same pairs (the explore tier's cost).
    pub skyline_labels: f64,
    /// `skyline_labels / astar_settled` — how much cheaper serving one
    /// user's best route is than exploring every Pareto-optimal one.
    pub skyline_advantage: f64,
    /// Single-query throughput of plain Dijkstra (queries / wall).
    pub dijkstra_qps: f64,
    /// Single-query throughput of A*, backward scans amortized over the
    /// user pool (queries / wall, scan time included once per target).
    pub astar_qps: f64,
    /// Engine batch throughput with a cold prep cache.
    pub cold_qps: f64,
    /// Engine batch throughput re-running the same batch warm.
    pub warm_qps: f64,
    /// `warm_qps / cold_qps`.
    pub warm_speedup: f64,
    /// Prep-cache hits over one cold + warm engine cycle (from the batch's
    /// [`mcn_engine::BatchStats::prep_cache`] deltas).
    pub cache_hits: u64,
    /// Prep-cache misses — backward scans executed — over the same cycle.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` of the same cycle.
    pub cache_hit_ratio: f64,
    /// Median per-query latency of the last warm engine batch, in
    /// milliseconds (from the engine's deterministic log2 histogram).
    pub p50_ms: f64,
    /// 95th-percentile per-query latency of the same batch (ms).
    pub p95_ms: f64,
    /// 99th-percentile per-query latency of the same batch (ms).
    pub p99_ms: f64,
    /// Fraction of observed routes whose hidden α the estimator recovered
    /// (a preference under which the route is optimal).
    pub estimator_recovered: f64,
    /// Mean feasibility rounds per recovered route.
    pub estimator_rounds: f64,
}

/// The persisted alpha report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlphaReport {
    /// Always [`ALPHA_ID`].
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The configuration that produced the rows.
    pub config: AlphaConfig,
    /// One row per (dims × network size) point.
    pub rows: Vec<AlphaRow>,
}

impl AlphaReport {
    /// Serializes the report as indented JSON (the `--out` report format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report from its JSON representation.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }
}

/// The deterministic half of one point: mean settled nodes with and without
/// the heuristic and the skyline's labels on the same pairs, asserted
/// byte-identical routes throughout. Shared by the experiment rows and the
/// settled-node regression gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarMetrics {
    /// Mean nodes settled per query, heuristic-free Dijkstra.
    pub dijkstra_settled: f64,
    /// Mean nodes settled per query, prep-backed A*.
    pub astar_settled: f64,
    /// Mean labels created per pair by the path-skyline search.
    pub skyline_labels: f64,
    /// Wall-clock seconds of the Dijkstra queries.
    pub dijkstra_secs: f64,
    /// Wall-clock seconds of the A* queries (scan included once per pair).
    pub astar_secs: f64,
}

/// Draws `pairs` deterministic source/target pairs over the graph's nodes
/// (a different stream than the prep experiment's, so the two sweeps do not
/// accidentally share routes).
fn seeded_pairs(graph: &MultiCostGraph, pairs: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA1FA_97B1);
    let n = graph.num_nodes();
    (0..pairs)
        .map(|_| {
            let s = NodeId::from(rng.gen_range(0..n));
            let mut t = NodeId::from(rng.gen_range(0..n));
            if t == s {
                t = NodeId::from((t.raw() as usize + 1) % n);
            }
            (s, t)
        })
        .collect()
}

/// The seeded per-user α pool of one point.
fn user_pool(d: usize, users: usize, seed: u64) -> Vec<Preference> {
    generate_preferences(&PreferenceSpec::uniform(users.max(1), d, seed))
        .iter()
        .map(|w| Preference::new(w).expect("generated weights are valid"))
        .collect()
}

/// Runs every (pair, α) query with and without the heuristic plus the
/// skyline search per pair, and returns the metrics.
///
/// # Panics
/// Panics if any A* route differs from plain Dijkstra's — the heuristic
/// must never change a result, only the work done finding it.
pub fn measure_scalarized(
    graph: &MultiCostGraph,
    pairs: usize,
    users: usize,
    seed: u64,
) -> ScalarMetrics {
    let pair_list = seeded_pairs(graph, pairs, seed);
    let pool = user_pool(graph.num_cost_types(), users, seed);
    let mut dijkstra_settled = 0u64;
    let mut astar_settled = 0u64;
    let mut skyline_labels = 0u64;
    let mut dijkstra_secs = 0.0f64;
    let mut astar_secs = 0.0f64;
    let clock = default_clock();
    for &(s, t) in &pair_list {
        let started = clock.now_ns();
        let prep = PrepTable::build(graph, t);
        for alpha in &pool {
            let run = scalarized_path_astar(graph, s, t, alpha, &prep);
            astar_settled += run.stats.settled;
        }
        astar_secs += clock.elapsed(started).as_secs_f64();

        let started = clock.now_ns();
        for alpha in &pool {
            let run = scalarized_path(graph, s, t, alpha);
            dijkstra_settled += run.stats.settled;
        }
        dijkstra_secs += clock.elapsed(started).as_secs_f64();

        // Routes must be identical query by query — re-run one pass outside
        // the timed loops so the timing numbers stay honest.
        for alpha in &pool {
            let plain = scalarized_path(graph, s, t, alpha);
            let astar = scalarized_path_astar(graph, s, t, alpha, &prep);
            match (plain.path, astar.path) {
                (Some(p), Some(a)) => {
                    assert_eq!(
                        p.edges,
                        a.edges,
                        "A* changed the {s} → {t} route for α = {:?}",
                        alpha.weights()
                    );
                    assert_eq!(
                        p.total.to_bits(),
                        a.total.to_bits(),
                        "A* changed the {s} → {t} scalarized total"
                    );
                }
                (None, None) => {}
                other => panic!("A* and Dijkstra disagree on reachability: {other:?}"),
            }
        }

        let skyline = pareto_paths_prepped(graph, s, t, &prep);
        skyline_labels += skyline.stats.labels_created;
    }
    let queries = (pair_list.len() * pool.len()).max(1) as f64;
    let n = pair_list.len().max(1) as f64;
    ScalarMetrics {
        dijkstra_settled: dijkstra_settled as f64 / queries,
        astar_settled: astar_settled as f64 / queries,
        skyline_labels: skyline_labels as f64 / n,
        dijkstra_secs,
        astar_secs,
    }
}

/// Feeds the estimator `routes` observed routes, each generated under a
/// hidden α from a dedicated seeded pool, and returns (recovered fraction,
/// mean rounds over recovered routes).
fn measure_estimator(graph: &MultiCostGraph, routes: usize, seed: u64) -> (f64, f64) {
    if routes == 0 {
        return (0.0, 0.0);
    }
    let pair_list = seeded_pairs(graph, routes, seed ^ 0x0E57);
    let hidden = user_pool(graph.num_cost_types(), routes, seed ^ 0x41D0);
    let estimator = PreferenceEstimator::new(graph);
    let mut recovered = 0usize;
    let mut rounds = 0u64;
    for (i, &(s, t)) in pair_list.iter().enumerate() {
        let Some(route) = scalarized_path(graph, s, t, &hidden[i]).path else {
            continue;
        };
        if let Some(outcome) = estimator.estimate(s, t, &route.edges) {
            recovered += 1;
            rounds += u64::from(outcome.rounds);
        }
    }
    (
        recovered as f64 / routes as f64,
        rounds as f64 / recovered.max(1) as f64,
    )
}

/// Builds the engine batch: `batch` alpha-path requests cycling over
/// `targets` distinct seeded targets and the user pool's αs, each queried
/// from a source a few hops away (repeated personalized queries towards
/// popular destinations — the serving tier's workload shape).
fn build_alpha_batch(
    graph: &MultiCostGraph,
    batch: usize,
    targets: usize,
    users: usize,
    seed: u64,
) -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0A1F_57A7);
    let n = graph.num_nodes();
    let pool: Vec<NodeId> = (0..targets.max(1))
        .map(|_| NodeId::from(rng.gen_range(0..n)))
        .collect();
    let alphas = user_pool(graph.num_cost_types(), users, seed ^ 0x5EED);
    (0..batch)
        .map(|i| {
            let target = pool[i % pool.len()];
            let mut source = target;
            for _ in 0..4 {
                let neighbors: Vec<NodeId> = graph.neighbors(source).map(|nb| nb.node).collect();
                if neighbors.is_empty() {
                    break;
                }
                source = neighbors[rng.gen_range(0..neighbors.len())];
            }
            QueryRequest::AlphaPath {
                source,
                target,
                alpha: alphas[i % alphas.len()].clone(),
            }
        })
        .collect()
}

/// Engine measurement repeats (best wall time kept; results asserted
/// identical on every repeat — same rationale as the prep experiment).
const ENGINE_REPEATS: usize = 3;

/// The engine half of one point: cold/warm QPS, cache counters, and the
/// per-query latency histogram of the last warm batch.
struct EngineMetrics {
    cold_qps: f64,
    warm_qps: f64,
    cache: mcn_prep::PrepCacheStats,
    warm_latency: mcn_obs::HistogramSnapshot,
}

/// One engine measurement: the batch cold vs warm, fingerprints asserted
/// identical, cache counters taken from the batches' own
/// [`mcn_engine::BatchStats::prep_cache`] deltas.
fn measure_engine(graph: &Arc<MultiCostGraph>, config: &AlphaConfig, seed: u64) -> EngineMetrics {
    let store =
        Arc::new(MCNStore::build_in_memory(graph, BufferConfig::Pages(32)).expect("store builds"));
    let ctx = Arc::new(PathContext::new(graph.clone(), config.cache_capacity));
    let engine = QueryEngine::new(store, config.workers).with_path_context(ctx.clone());
    let requests = build_alpha_batch(graph, config.batch, config.targets, config.users, seed);
    let prints = |r: &mcn_engine::BatchResult| {
        r.outcomes
            .iter()
            .map(|o| o.output.fingerprint())
            .collect::<Vec<_>>()
    };

    // Warm-up: first-touch page faults and allocator growth hit this run.
    let reference = prints(&engine.run_batch(&requests));

    let mut cold_qps = 0.0f64;
    let mut warm_qps = 0.0f64;
    let mut cache = mcn_prep::PrepCacheStats::default();
    let mut warm_latency = None;
    for _ in 0..ENGINE_REPEATS {
        ctx.clear_cache();
        let cold = engine.run_batch(&requests);
        let warm = engine.run_batch(&requests);
        assert_eq!(
            reference,
            prints(&cold),
            "cold-cache engine run changed alpha-path results"
        );
        assert_eq!(
            reference,
            prints(&warm),
            "warm-cache engine run changed alpha-path results"
        );
        cold_qps = cold_qps.max(cold.stats.qps);
        warm_qps = warm_qps.max(warm.stats.qps);
        // Per-batch deltas straight from BatchStats; the last repeat's
        // cold + warm cycle is reported.
        cache = mcn_prep::PrepCacheStats {
            hits: cold.stats.prep_cache.hits + warm.stats.prep_cache.hits,
            misses: cold.stats.prep_cache.misses + warm.stats.prep_cache.misses,
            evictions: cold.stats.prep_cache.evictions + warm.stats.prep_cache.evictions,
        };
        warm_latency = Some(warm.stats.latency);
    }
    EngineMetrics {
        cold_qps,
        warm_qps,
        cache,
        warm_latency: warm_latency.expect("ENGINE_REPEATS > 0"),
    }
}

/// The workload spec of one synthetic point (same shape as the prep
/// experiment's, so rows are comparable across the two reports).
fn point_spec(nodes: usize, d: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        nodes,
        facilities: (nodes / 5).max(10),
        cost_types: d,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 4,
        queries: 4,
        seed,
    }
}

/// Runs one point over an explicit graph and returns its row.
fn measure_point(graph: Arc<MultiCostGraph>, config: &AlphaConfig) -> AlphaRow {
    let d = graph.num_cost_types();
    let metrics = measure_scalarized(&graph, config.pairs, config.users, config.seed);
    let engine = measure_engine(&graph, config, config.seed);
    let (cold_qps, warm_qps) = (engine.cold_qps, engine.warm_qps);
    let (estimator_recovered, estimator_rounds) =
        measure_estimator(&graph, config.estimator_routes, config.seed);
    let queries = (config.pairs * config.users) as f64;
    let row = AlphaRow {
        dims: d,
        nodes: graph.num_nodes(),
        pairs: config.pairs,
        users: config.users,
        dijkstra_settled: json_safe(metrics.dijkstra_settled),
        astar_settled: json_safe(metrics.astar_settled),
        settled_reduction: json_safe(metrics.dijkstra_settled / metrics.astar_settled.max(1.0)),
        skyline_labels: json_safe(metrics.skyline_labels),
        skyline_advantage: json_safe(metrics.skyline_labels / metrics.astar_settled.max(1.0)),
        dijkstra_qps: json_safe(queries / metrics.dijkstra_secs.max(1e-12)),
        astar_qps: json_safe(queries / metrics.astar_secs.max(1e-12)),
        cold_qps: json_safe(cold_qps),
        warm_qps: json_safe(warm_qps),
        warm_speedup: json_safe(if cold_qps > 0.0 {
            warm_qps / cold_qps
        } else {
            1.0
        }),
        cache_hits: engine.cache.hits,
        cache_misses: engine.cache.misses,
        cache_hit_ratio: json_safe(engine.cache.hit_ratio()),
        p50_ms: json_safe(engine.warm_latency.p50 as f64 / 1e6),
        p95_ms: json_safe(engine.warm_latency.p95 as f64 / 1e6),
        p99_ms: json_safe(engine.warm_latency.p99 as f64 / 1e6),
        estimator_recovered: json_safe(estimator_recovered),
        estimator_rounds: json_safe(estimator_rounds),
    };
    if config.assert_improvements {
        assert!(
            row.settled_reduction >= MIN_SETTLED_REDUCTION,
            "A* settled only {:.2}× fewer nodes than Dijkstra \
             (< {MIN_SETTLED_REDUCTION}×) at {} nodes / d = {d}",
            row.settled_reduction,
            row.nodes
        );
        assert!(
            row.skyline_advantage >= MIN_SKYLINE_ADVANTAGE,
            "the skyline created only {:.2}× more labels than A* settled \
             nodes (< {MIN_SKYLINE_ADVANTAGE}×) at {} nodes / d = {d}",
            row.skyline_advantage,
            row.nodes
        );
        assert!(
            row.warm_qps > row.cold_qps,
            "warm prep cache served {} nodes / d = {d} at {:.1} QPS, \
             cold at {:.1} QPS",
            row.nodes,
            row.warm_qps,
            row.cold_qps
        );
    }
    row
}

/// Runs the alpha sweep on seeded synthetic workloads.
pub fn run_alpha(config: &AlphaConfig) -> AlphaReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    assert!(!config.nodes.is_empty(), "no network sizes to sweep");
    let mut rows = Vec::with_capacity(config.dims.len() * config.nodes.len());
    for &d in &config.dims {
        for &nodes in &config.nodes {
            let workload = generate_workload(&point_spec(nodes, d, config.seed));
            rows.push(measure_point(Arc::new(workload.graph), config));
        }
    }
    report(config, rows)
}

/// Runs the alpha sweep over an explicit network topology (e.g. a DIMACS
/// road network loaded through [`crate::prep::dimacs_graph`]): each swept
/// dimension
/// re-draws costs via [`mcn_gen::workload_on_graph`]; the `nodes` sweep is
/// ignored (the file defines the topology).
pub fn run_alpha_on_graph(config: &AlphaConfig, graph: &MultiCostGraph) -> AlphaReport {
    assert!(!config.dims.is_empty(), "no cost dimensions to sweep");
    let mut rows = Vec::with_capacity(config.dims.len());
    for &d in &config.dims {
        let spec = WorkloadSpec {
            cost_types: d,
            facilities: (graph.num_nodes() / 5).clamp(10, 100_000),
            queries: 4,
            seed: config.seed,
            ..WorkloadSpec::paper_default()
        };
        let workload = mcn_gen::workload_on_graph(graph, &spec);
        rows.push(measure_point(Arc::new(workload.graph), config));
    }
    report(config, rows)
}

fn report(config: &AlphaConfig, rows: Vec<AlphaRow>) -> AlphaReport {
    AlphaReport {
        id: ALPHA_ID.to_string(),
        title: format!(
            "Scalarized preference serving tier — prep-backed A* vs Dijkstra vs \
             the skyline explore tier, over {}",
            config.source
        ),
        config: config.clone(),
        rows,
    }
}

/// Renders an alpha report in the fixed-width style of the other reports.
pub fn render_alpha_table(table: &AlphaReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "({} pairs × {} users per point; engine batch of {} over {} targets, \
         {} workers, cache capacity {})\n",
        table.config.pairs,
        table.config.users,
        table.config.batch,
        table.config.targets,
        table.config.workers,
        table.config.cache_capacity
    ));
    out.push_str(&format!(
        "{:<4} {:>7} {:>12} {:>11} {:>8} {:>13} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>6}\n",
        "d",
        "nodes",
        "dij settled",
        "A* settled",
        "reduce",
        "skyline lbls",
        "advantage",
        "cold QPS",
        "warm QPS",
        "p50(ms)",
        "p95(ms)",
        "hit%",
        "est%"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<4} {:>7} {:>12.1} {:>11.1} {:>7.2}x {:>13.1} {:>8.1}x {:>10.1} \
             {:>10.1} {:>9.3} {:>9.3} {:>7.1}% {:>5.0}%\n",
            r.dims,
            r.nodes,
            r.dijkstra_settled,
            r.astar_settled,
            r.settled_reduction,
            r.skyline_labels,
            r.skyline_advantage,
            r.cold_qps,
            r.warm_qps,
            r.p50_ms,
            r.p95_ms,
            r.cache_hit_ratio * 100.0,
            r.estimator_recovered * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AlphaConfig {
        AlphaConfig {
            nodes: vec![120],
            dims: vec![2, 3],
            pairs: 3,
            users: 3,
            batch: 8,
            targets: 4,
            workers: 2,
            cache_capacity: 4,
            estimator_routes: 2,
            // Unit tests run in debug on loaded machines; the timing and
            // ratio assertions belong to the release-mode experiment runs.
            assert_improvements: false,
            ..Default::default()
        }
    }

    #[test]
    fn alpha_sweep_reports_reductions_and_identical_routes() {
        let table = run_alpha(&tiny_config());
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            // The in-run assertions already proved byte-identical routes;
            // the heuristic must show up even at toy scale.
            assert!(row.astar_settled <= row.dijkstra_settled);
            assert!(row.settled_reduction >= 1.0);
            assert!(row.skyline_labels > 0.0);
            assert!(row.cold_qps > 0.0 && row.warm_qps > 0.0);
            assert!(row.cache_hits > 0);
            assert!(row.cache_hit_ratio > 0.0 && row.cache_hit_ratio < 1.0);
            // Latency percentiles come from the engine's histogram: finite,
            // ordered, and positive on a real (monotonic) clock.
            assert!(row.p50_ms > 0.0);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
    }

    #[test]
    fn scalar_metrics_are_deterministic() {
        let config = tiny_config();
        let workload = generate_workload(&point_spec(120, 3, config.seed));
        let a = measure_scalarized(&workload.graph, config.pairs, config.users, config.seed);
        let b = measure_scalarized(&workload.graph, config.pairs, config.users, config.seed);
        assert_eq!(a.dijkstra_settled, b.dijkstra_settled);
        assert_eq!(a.astar_settled, b.astar_settled);
        assert_eq!(a.skyline_labels, b.skyline_labels);
        assert!(a.astar_settled < a.dijkstra_settled);
    }

    #[test]
    fn estimator_recovers_pool_routes() {
        let config = tiny_config();
        let workload = generate_workload(&point_spec(120, 3, config.seed));
        let (recovered, rounds) = measure_estimator(&workload.graph, 3, config.seed);
        assert!(recovered > 0.0);
        assert!(rounds >= 1.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let table = run_alpha(&AlphaConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let json = table.to_json();
        let parsed = AlphaReport::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn rendered_table_mentions_the_columns() {
        let table = run_alpha(&AlphaConfig {
            dims: vec![2],
            ..tiny_config()
        });
        let text = render_alpha_table(&table);
        assert!(text.contains("dij settled"));
        assert!(text.contains("A* settled"));
        assert!(text.contains("advantage"));
    }

    #[test]
    fn alpha_runs_on_an_explicit_graph() {
        let workload = generate_workload(&point_spec(100, 2, 7));
        let config = AlphaConfig {
            dims: vec![2, 3],
            source: "explicit".into(),
            ..tiny_config()
        };
        let table = run_alpha_on_graph(&config, &workload.graph);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].nodes, workload.graph.num_nodes());
        assert_eq!(table.rows[0].dims, 2);
        assert_eq!(table.rows[1].dims, 3);
        assert!(table.title.contains("explicit"));
    }
}
