//! Sorted-sweep Pareto front for the bicriterion (d = 2) case.
//!
//! With exactly two cost types a Pareto front has a total structure the
//! general pairwise dominance test cannot exploit: sorted by the first
//! component ascending, the second component is **strictly descending**.
//! Membership and dominance queries therefore reduce to one binary search
//! instead of a scan over the whole front — the classic bicriterion
//! fast path (ROADMAP item "Bicriterion d = 2 fast path").
//!
//! [`Front2`] is used as a *mirror* of a label set that the general-purpose
//! code keeps anyway: `mcn-mcpp` mirrors the target skyline with one and
//! answers its hot weak-dominance check in `O(log k)`, and `mcn-index`
//! maintains shortcut bundles and assembled skylines through it. The
//! boolean answers are defined to be *identical* to the pairwise test over
//! the same multiset of points, so switching the fast path on cannot change
//! a single label count.

use crate::cost::CostVec;

/// A 2-dimensional Pareto front under *minimisation*, kept sorted by the
/// first component ascending (and, as an invariant, the second component
/// strictly descending).
///
/// Points on the front are mutually non-dominated in the **weak** sense:
/// inserting a point weakly dominated by a member is a no-op, and inserting
/// a new member evicts every member it strictly dominates. Duplicate points
/// are kept once. This mirrors exactly how the label-correcting code treats
/// its skylines (`dominates_weak` to reject, `dominates` to evict).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Front2 {
    /// `(c0, c1)` pairs sorted by `c0` ascending, `c1` strictly descending.
    points: Vec<(f64, f64)>,
}

impl Front2 {
    /// An empty front.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the front has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops every point.
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// True iff some front member weakly dominates `(c0, c1)` — i.e. has
    /// both components `≤`. Equivalent to
    /// `members.iter().any(|m| dominates_weak(m, p))` over the same points,
    /// in `O(log k)`: the best candidate is the member with the largest
    /// first component still `≤ c0` (its second component is the smallest
    /// among those), so one binary search decides.
    pub fn dominates_weak(&self, c0: f64, c1: f64) -> bool {
        // partition_point: first index whose member has points[i].0 > c0.
        let idx = self.points.partition_point(|p| p.0.total_cmp(&c0).is_le());
        if idx == 0 {
            return false;
        }
        self.points[idx - 1].1 <= c1
    }

    /// Inserts `(c0, c1)` unless a member weakly dominates it; evicts every
    /// member it strictly dominates. Returns `true` iff the point joined
    /// the front.
    pub fn insert(&mut self, c0: f64, c1: f64) -> bool {
        if self.dominates_weak(c0, c1) {
            return false;
        }
        // The new point survives. Members strictly dominated by it form a
        // contiguous run starting at its insertion position: every member
        // with a first component ≥ c0 and second component ≥ c1 (with one
        // strict, guaranteed because no member weakly dominates the new
        // point and members are pairwise non-dominated).
        let start = self.points.partition_point(|p| p.0.total_cmp(&c0).is_lt());
        let mut end = start;
        while end < self.points.len() && self.points[end].1 >= c1 {
            end += 1;
        }
        self.points.splice(start..end, [(c0, c1)]);
        true
    }

    /// [`Front2::insert`] for a [`CostVec`] (which must have `len() == 2`).
    ///
    /// # Panics
    /// Panics if the vector is not 2-dimensional.
    pub fn insert_vec(&mut self, costs: &CostVec) -> bool {
        assert_eq!(costs.len(), 2, "Front2 is strictly bicriterion");
        self.insert(costs[0], costs[1])
    }

    /// [`Front2::dominates_weak`] for a [`CostVec`] (which must have
    /// `len() == 2`).
    ///
    /// # Panics
    /// Panics if the vector is not 2-dimensional.
    pub fn dominates_weak_vec(&self, costs: &CostVec) -> bool {
        assert_eq!(costs.len(), 2, "Front2 is strictly bicriterion");
        self.dominates_weak(costs[0], costs[1])
    }

    /// The points of the front, sorted by first component ascending.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{dominates, dominates_weak};

    /// Pairwise reference model of the same weak/strict dominance protocol.
    #[derive(Default)]
    struct Reference {
        points: Vec<CostVec>,
    }

    impl Reference {
        fn dominates_weak(&self, p: &CostVec) -> bool {
            self.points.iter().any(|m| dominates_weak(m, p))
        }

        fn insert(&mut self, p: CostVec) -> bool {
            if self.dominates_weak(&p) {
                return false;
            }
            self.points.retain(|m| !dominates(&p, m));
            self.points.push(p);
            true
        }
    }

    fn vec2(a: f64, b: f64) -> CostVec {
        CostVec::from_slice(&[a, b])
    }

    #[test]
    fn basic_insert_and_dominance() {
        let mut f = Front2::new();
        assert!(f.insert(3.0, 1.0));
        assert!(f.insert(1.0, 3.0));
        assert_eq!(f.len(), 2);
        // Weakly dominated by (1, 3).
        assert!(f.dominates_weak(1.5, 3.0));
        assert!(!f.insert(1.0, 3.0)); // duplicate is weakly dominated
        assert!(!f.dominates_weak(0.5, 2.0));
        // Dominates both members: evicts them.
        assert!(f.insert(0.5, 0.5));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points(), &[(0.5, 0.5)]);
    }

    #[test]
    fn incomparable_points_accumulate_sorted() {
        let mut f = Front2::new();
        for &(a, b) in &[(5.0, 1.0), (1.0, 5.0), (3.0, 3.0), (2.0, 4.0), (4.0, 2.0)] {
            assert!(f.insert(a, b));
        }
        let firsts: Vec<f64> = f.points().iter().map(|p| p.0).collect();
        assert_eq!(firsts, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let seconds: Vec<f64> = f.points().iter().map(|p| p.1).collect();
        assert_eq!(seconds, vec![5.0, 4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn partial_eviction_keeps_survivors() {
        let mut f = Front2::new();
        f.insert(1.0, 5.0);
        f.insert(3.0, 3.0);
        f.insert(5.0, 1.0);
        // Dominates (3,3) only.
        assert!(f.insert(2.0, 2.0));
        assert_eq!(f.points(), &[(1.0, 5.0), (2.0, 2.0), (5.0, 1.0)]);
    }

    #[test]
    fn matches_pairwise_reference_on_seeded_stream() {
        // Deterministic LCG stream of points on a small lattice so exact
        // duplicates and exact component ties both occur.
        let mut lcg = 0x5EEDu64;
        let mut next = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((lcg >> 33) % 16) as f64 * 0.25
        };
        let mut fast = Front2::new();
        let mut reference = Reference::default();
        for _ in 0..2000 {
            let p = vec2(next(), next());
            // The query answer must agree *before* mutation...
            assert_eq!(
                fast.dominates_weak_vec(&p),
                reference.dominates_weak(&p),
                "query diverged at {p:?}"
            );
            // ...and the insertion outcome must agree too.
            assert_eq!(fast.insert_vec(&p), reference.insert(p), "insert diverged");
            assert_eq!(fast.len(), reference.points.len());
        }
        // Final fronts hold the same point set.
        let mut got: Vec<(u64, u64)> = fast
            .points()
            .iter()
            .map(|p| (p.0.to_bits(), p.1.to_bits()))
            .collect();
        let mut want: Vec<(u64, u64)> = reference
            .points
            .iter()
            .map(|m| (m[0].to_bits(), m[1].to_bits()))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "strictly bicriterion")]
    fn rejects_higher_dimensional_vectors() {
        let mut f = Front2::new();
        f.insert_vec(&CostVec::from_slice(&[1.0, 2.0, 3.0]));
    }
}
