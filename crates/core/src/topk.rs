//! MCN top-k processing: batch (known `k`) and incremental variants.
//!
//! Top-k processing reuses the skyline machinery (paper Section V): the
//! growing stage runs the `d` expansions round-robin and collects candidates
//! until **k** facilities are pinned (instead of one); the shrinking stage
//! stops admitting new facilities, stops touching the facility file, and
//! resolves the remaining candidates, pruning them with the frontier-based
//! lower bound on their aggregate cost.
//!
//! The incremental variant ([`TopKIter`]) does not require `k` up front: it
//! reports facilities one at a time in ascending aggregate-cost order, and can
//! be driven until the whole facility set is exhausted.

use crate::aggregate::AggregateCost;
use crate::candidate::CandidateSet;
use crate::skyline::Algorithm;
use crate::stats::QueryStats;
use mcn_expansion::{
    seeds_for_location, DirectAccess, Expansion, ExpansionStep, FacilityMode, NetworkAccess,
    SharedAccess,
};
use mcn_graph::{CostVec, EdgeId, FacilityId, NetworkLocation};
use mcn_storage::{IoStats, StoreView};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One member of a top-k result.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKEntry {
    /// The facility.
    pub facility: FacilityId,
    /// Its per-cost-type network distances from the query location.
    pub costs: CostVec,
    /// Its aggregate cost `f(⃗c(p))`.
    pub score: f64,
}

/// The result of a batch top-k query.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The `k` best facilities in ascending aggregate-cost order.
    pub entries: Vec<TopKEntry>,
    /// Execution statistics.
    pub stats: QueryStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Growing,
    Shrinking,
}

struct TopKState<A: NetworkAccess, F: AggregateCost> {
    access: Arc<A>,
    aggregate: F,
    expansions: Vec<Expansion<A>>,
    active: Vec<bool>,
    candidates: CandidateSet,
    algorithm: &'static str,
    dominance_checks: usize,
    start_io: IoStats,
    started: Instant,
}

impl<A: NetworkAccess, F: AggregateCost> TopKState<A, F> {
    fn new(
        access: Arc<A>,
        location: NetworkLocation,
        aggregate: F,
        algorithm: &'static str,
    ) -> Self {
        let d = access.num_cost_types();
        assert_eq!(
            aggregate.arity(),
            d,
            "aggregate arity must match the number of cost types"
        );
        let start_io = access.io_stats();
        let started = Instant::now();
        let seeds = seeds_for_location(access.as_ref(), location);
        let expansions: Vec<Expansion<A>> = (0..d)
            .map(|i| Expansion::new(access.clone(), i, &seeds, FacilityMode::All))
            .collect();
        Self {
            access,
            aggregate,
            expansions,
            active: vec![true; d],
            candidates: CandidateSet::new(d),
            algorithm,
            dominance_checks: 0,
            start_io,
            started,
        }
    }

    fn d(&self) -> usize {
        self.expansions.len()
    }

    fn frontiers(&self) -> Vec<f64> {
        self.expansions
            .iter()
            .map(|ex| ex.frontier_bound().unwrap_or(f64::INFINITY))
            .collect()
    }

    fn all_inactive(&self) -> bool {
        self.active.iter().all(|a| !a)
    }

    /// Switches to the facility-file-free shrinking mode (Section IV-A
    /// optimisation, applied to top-k processing as described in Section V).
    fn enter_shrinking(&mut self) {
        let mut by_edge: HashMap<EdgeId, Vec<(FacilityId, f64)>> = HashMap::new();
        for cand in self.candidates.iter() {
            if let Some(info) = self.access.facility_info(cand.facility) {
                by_edge
                    .entry(info.edge)
                    .or_default()
                    .push((cand.facility, info.position));
            }
        }
        let shared = Arc::new(by_edge);
        for ex in &mut self.expansions {
            ex.set_facility_mode(FacilityMode::CandidatesOnly(shared.clone()));
        }
    }

    fn collect_stats(&self, pinned: usize, result_size: usize) -> QueryStats {
        let mut nodes_settled = 0;
        let mut heap_pushes = 0;
        let mut heap_pops = 0;
        for ex in &self.expansions {
            let s = ex.stats();
            nodes_settled += s.nodes_settled;
            heap_pushes += s.heap_pushes;
            heap_pops += s.heap_pops;
        }
        QueryStats {
            algorithm: self.algorithm.to_string(),
            elapsed: self.started.elapsed(),
            io: self.access.io_stats() - self.start_io,
            nodes_settled,
            heap_pushes,
            heap_pops,
            candidates: self.candidates.admitted(),
            pinned,
            dominance_checks: self.dominance_checks,
            result_size,
        }
    }
}

/// Runs a batch top-k query with the given access discipline.
fn topk_with_access<A: NetworkAccess, F: AggregateCost>(
    access: Arc<A>,
    location: NetworkLocation,
    aggregate: F,
    k: usize,
    algorithm: &'static str,
) -> TopKResult {
    let mut state = TopKState::new(access, location, aggregate, algorithm);
    let d = state.d();
    let mut stage = Stage::Growing;
    // The tentative top-k, kept sorted by (score, facility id).
    let mut top: Vec<TopKEntry> = Vec::new();
    let mut pinned_total = 0usize;

    if k == 0 {
        let stats = state.collect_stats(0, 0);
        return TopKResult {
            entries: Vec::new(),
            stats,
        };
    }

    let mut probe = 0usize;
    loop {
        if state.all_inactive() {
            break;
        }
        let i = probe % d;
        probe += 1;
        if !state.active[i] {
            continue;
        }
        // Early-stop optimisation: an expansion whose cost is known for every
        // remaining candidate contributes nothing further (shrinking only).
        if stage == Stage::Shrinking
            && (state.candidates.is_empty() || state.candidates.all_know_cost(i))
        {
            state.active[i] = false;
            continue;
        }

        // Growing probes until the next NN; shrinking advances one step at a
        // time (facilities are rare in the heaps then — paper Section V).
        let popped: Option<(FacilityId, f64)> = match stage {
            Stage::Growing => match state.expansions[i].next_nearest() {
                Some(hit) => Some(hit),
                None => {
                    state.active[i] = false;
                    None
                }
            },
            Stage::Shrinking => match state.expansions[i].advance() {
                ExpansionStep::Facility { facility, cost } => Some((facility, cost)),
                ExpansionStep::NodeSettled { .. } => None,
                ExpansionStep::Exhausted => {
                    state.active[i] = false;
                    None
                }
            },
        };

        if let Some((facility, cost)) = popped {
            let admit = stage == Stage::Growing;
            let pinned = state
                .candidates
                .record(facility, i, cost, admit)
                .filter(|c| c.is_pinned())
                .map(|c| c.cost_vector());
            if let Some(costs) = pinned {
                state.candidates.remove(facility);
                pinned_total += 1;
                let score = state.aggregate.score(&costs);
                let entry = TopKEntry {
                    facility,
                    costs,
                    score,
                };
                match stage {
                    Stage::Growing => {
                        top.push(entry);
                        top.sort_by(|a, b| {
                            a.score
                                .total_cmp(&b.score)
                                .then(a.facility.cmp(&b.facility))
                        });
                        if top.len() == k {
                            stage = Stage::Shrinking;
                            state.enter_shrinking();
                        }
                    }
                    Stage::Shrinking => {
                        state.dominance_checks += 1;
                        let kth = top.last().expect("top is full in shrinking").score;
                        if entry.score < kth {
                            top.pop();
                            top.push(entry);
                            top.sort_by(|a, b| {
                                a.score
                                    .total_cmp(&b.score)
                                    .then(a.facility.cmp(&b.facility))
                            });
                        }
                    }
                }
            }
        }

        // After every complete pass, prune candidates whose aggregate-cost
        // lower bound cannot beat the current k-th best (shrinking only).
        if stage == Stage::Shrinking && probe % d == 0 && top.len() == k {
            let kth = top.last().expect("top is full").score;
            let frontiers = state.frontiers();
            let aggregate = &state.aggregate;
            let mut checks = 0usize;
            let to_remove: Vec<FacilityId> = state
                .candidates
                .iter()
                .filter(|c| {
                    checks += 1;
                    aggregate.lower_bound(&c.known, &frontiers) >= kth
                })
                .map(|c| c.facility)
                .collect();
            state.dominance_checks += checks;
            for fid in to_remove {
                state.candidates.remove(fid);
            }
            if state.candidates.is_empty() {
                break;
            }
        }
    }

    // If the expansions ran dry before k facilities were pinned (tiny or
    // partially unreachable facility sets), fill up from the remaining
    // candidates, treating unknown costs as +∞.
    if top.len() < k {
        let d = state.d();
        let mut leftovers: Vec<TopKEntry> = state
            .candidates
            .iter()
            .map(|c| {
                let mut cv = CostVec::zeros(d);
                for i in 0..d {
                    cv[i] = c.known[i].unwrap_or(f64::INFINITY);
                }
                TopKEntry {
                    facility: c.facility,
                    costs: cv,
                    score: state.aggregate.score(&cv),
                }
            })
            .collect();
        leftovers.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(a.facility.cmp(&b.facility))
        });
        for entry in leftovers {
            if top.len() == k {
                break;
            }
            top.push(entry);
        }
        top.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(a.facility.cmp(&b.facility))
        });
    }

    top.truncate(k);
    let stats = state.collect_stats(pinned_total, top.len());
    TopKResult {
        entries: top,
        stats,
    }
}

/// Computes the `k` facilities with the smallest aggregate cost from
/// `location`, using LSA- or CEA-style expansion, over any [`StoreView`]
/// (monolithic or partitioned — identical results).
pub fn topk_query<S: StoreView + ?Sized, F: AggregateCost>(
    store: &Arc<S>,
    location: NetworkLocation,
    aggregate: F,
    k: usize,
    algorithm: Algorithm,
) -> TopKResult {
    match algorithm {
        Algorithm::Lsa => topk_with_access(
            Arc::new(DirectAccess::new(store.clone())),
            location,
            aggregate,
            k,
            "LSA",
        ),
        Algorithm::Cea => topk_with_access(
            Arc::new(SharedAccess::new(store.clone())),
            location,
            aggregate,
            k,
            "CEA",
        ),
    }
}

/// The straightforward top-k baseline: `d` complete expansions to obtain every
/// facility's cost vector, then sort by aggregate cost.
pub fn baseline_topk<S: StoreView + ?Sized, F: AggregateCost>(
    store: &Arc<S>,
    location: NetworkLocation,
    aggregate: F,
    k: usize,
) -> TopKResult {
    let started = Instant::now();
    let access = Arc::new(DirectAccess::new(store.clone()));
    let start_io = access.io_stats();
    let d = access.num_cost_types();
    let seeds = seeds_for_location(access.as_ref(), location);

    let mut costs: HashMap<FacilityId, Vec<f64>> = HashMap::new();
    let mut nodes_settled = 0;
    let mut heap_pushes = 0;
    let mut heap_pops = 0;
    for i in 0..d {
        let mut ex = Expansion::new(access.clone(), i, &seeds, FacilityMode::All);
        while let Some((facility, cost)) = ex.next_nearest() {
            costs
                .entry(facility)
                .or_insert_with(|| vec![f64::INFINITY; d])[i] = cost;
        }
        let s = ex.stats();
        nodes_settled += s.nodes_settled;
        heap_pushes += s.heap_pushes;
        heap_pops += s.heap_pops;
    }
    let total = costs.len();
    let mut entries: Vec<TopKEntry> = costs
        .into_iter()
        .map(|(facility, v)| {
            let cv = CostVec::from_slice(&v);
            TopKEntry {
                facility,
                costs: cv,
                score: aggregate.score(&cv),
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.facility.cmp(&b.facility))
    });
    entries.truncate(k);

    let stats = QueryStats {
        algorithm: "Baseline".to_string(),
        elapsed: started.elapsed(),
        io: access.io_stats() - start_io,
        nodes_settled,
        heap_pushes,
        heap_pops,
        candidates: total,
        pinned: total,
        dominance_checks: 0,
        result_size: entries.len(),
    };
    TopKResult { entries, stats }
}

/// Incremental top-k: reports facilities one at a time in ascending
/// aggregate-cost order, without needing `k` in advance (paper Section V).
///
/// A facility is reported once (i) it is pinned, (ii) it has the smallest
/// aggregate cost among unreported pinned facilities, and (iii) no candidate's
/// aggregate-cost lower bound beats it.
pub struct TopKIter<A: NetworkAccess, F: AggregateCost> {
    state: TopKState<A, F>,
    /// Pinned but not yet reported, sorted ascending by (score, facility).
    ready: Vec<TopKEntry>,
    reported: usize,
    probe: usize,
    exhausted_resolved: bool,
}

impl<S: StoreView + ?Sized, F: AggregateCost> TopKIter<DirectAccess<S>, F> {
    /// Starts an incremental top-k iteration with LSA-style access (over any
    /// [`StoreView`]).
    pub fn lsa(store: Arc<S>, location: NetworkLocation, aggregate: F) -> Self {
        Self::new(
            Arc::new(DirectAccess::new(store)),
            location,
            aggregate,
            "LSA",
        )
    }
}

impl<S: StoreView + ?Sized, F: AggregateCost> TopKIter<SharedAccess<S>, F> {
    /// Starts an incremental top-k iteration with CEA-style access (over any
    /// [`StoreView`]).
    pub fn cea(store: Arc<S>, location: NetworkLocation, aggregate: F) -> Self {
        Self::new(
            Arc::new(SharedAccess::new(store)),
            location,
            aggregate,
            "CEA",
        )
    }
}

impl<A: NetworkAccess, F: AggregateCost> TopKIter<A, F> {
    /// Starts an incremental top-k iteration over an arbitrary access
    /// discipline.
    pub fn new(
        access: Arc<A>,
        location: NetworkLocation,
        aggregate: F,
        algorithm: &'static str,
    ) -> Self {
        Self {
            state: TopKState::new(access, location, aggregate, algorithm),
            ready: Vec::new(),
            reported: 0,
            probe: 0,
            exhausted_resolved: false,
        }
    }

    /// Number of facilities reported so far.
    pub fn reported(&self) -> usize {
        self.reported
    }

    /// Execution statistics gathered so far.
    pub fn stats(&self) -> QueryStats {
        self.state
            .collect_stats(self.ready.len() + self.reported, self.reported)
    }

    fn sort_ready(&mut self) {
        self.ready.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(a.facility.cmp(&b.facility))
        });
    }

    /// True iff the best ready entry may be reported (condition (iii)).
    fn best_is_safe(&self) -> bool {
        let Some(best) = self.ready.first() else {
            return false;
        };
        let frontiers = self.state.frontiers();
        self.state
            .candidates
            .iter()
            .all(|c| self.state.aggregate.lower_bound(&c.known, &frontiers) >= best.score)
    }
}

impl<A: NetworkAccess, F: AggregateCost> Iterator for TopKIter<A, F> {
    type Item = TopKEntry;

    fn next(&mut self) -> Option<TopKEntry> {
        let d = self.state.d();
        loop {
            if !self.ready.is_empty() && (self.best_is_safe() || self.state.all_inactive()) {
                let entry = self.ready.remove(0);
                self.reported += 1;
                return Some(entry);
            }
            if self.state.all_inactive() {
                if !self.exhausted_resolved {
                    // Resolve every remaining candidate with +∞ for unknown
                    // costs so the iteration can run through the whole set.
                    let leftovers: Vec<TopKEntry> = self
                        .state
                        .candidates
                        .iter()
                        .map(|c| {
                            let mut cv = CostVec::zeros(d);
                            for i in 0..d {
                                cv[i] = c.known[i].unwrap_or(f64::INFINITY);
                            }
                            TopKEntry {
                                facility: c.facility,
                                costs: cv,
                                score: self.state.aggregate.score(&cv),
                            }
                        })
                        .collect();
                    for entry in leftovers {
                        self.state.candidates.remove(entry.facility);
                        self.ready.push(entry);
                    }
                    self.sort_ready();
                    self.exhausted_resolved = true;
                    continue;
                }
                return None;
            }

            // Make progress: probe the next active expansion for its next NN.
            let i = self.probe % d;
            self.probe += 1;
            if !self.state.active[i] {
                continue;
            }
            match self.state.expansions[i].next_nearest() {
                None => {
                    self.state.active[i] = false;
                }
                Some((facility, cost)) => {
                    // Incremental processing never closes admission.
                    let pinned = self
                        .state
                        .candidates
                        .record(facility, i, cost, true)
                        .filter(|c| c.is_pinned())
                        .map(|c| c.cost_vector());
                    if let Some(costs) = pinned {
                        self.state.candidates.remove(facility);
                        let score = self.state.aggregate.score(&costs);
                        self.ready.push(TopKEntry {
                            facility,
                            costs,
                            score,
                        });
                        self.sort_ready();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::WeightedSum;
    use crate::test_support::{paper_figure1_store, random_store, topk_oracle};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Compile-time thread-safety contract: incremental iterations must be
    /// movable onto `QueryEngine` worker threads.
    const fn assert_send<T: Send>() {}
    const _: () = assert_send::<TopKIter<DirectAccess, WeightedSum>>();
    const _: () = assert_send::<TopKIter<SharedAccess, WeightedSum>>();

    fn scores(r: &TopKResult) -> Vec<f64> {
        r.entries.iter().map(|e| e.score).collect()
    }

    #[test]
    fn paper_figure1_weighting_selects_expected_warehouse() {
        let (store, q, (p1, p2)) = paper_figure1_store();
        let store = Arc::new(store);
        // 90 % sensitive goods → time dominates → p2 (10 min, 1 $) wins.
        let time_heavy = WeightedSum::new(vec![0.9, 0.1]);
        let r = topk_query(&store, q, time_heavy, 1, Algorithm::Cea);
        assert_eq!(r.entries[0].facility, p2);
        // Money-dominated weighting prefers the toll-free p1.
        let money_heavy = WeightedSum::new(vec![0.01, 0.99]);
        let r = topk_query(&store, q, money_heavy, 1, Algorithm::Lsa);
        assert_eq!(r.entries[0].facility, p1);
    }

    #[test]
    fn lsa_cea_and_baseline_match_the_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for seed in 0..5 {
            let d = rng.gen_range(2..=4);
            let (store, graph, q) = random_store(seed, 150, 90, 70, d);
            let store = Arc::new(store);
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
            let f = WeightedSum::new(weights);
            let k = rng.gen_range(1..=8);
            let expected = topk_oracle(&graph, q, &f, k);

            for algo in [Algorithm::Lsa, Algorithm::Cea] {
                let got = topk_query(&store, q, f.clone(), k, algo);
                assert_eq!(got.entries.len(), expected.len());
                for (g, e) in got.entries.iter().zip(&expected) {
                    assert!(
                        (g.score - e.1).abs() < 1e-9,
                        "seed {seed} {}: score {} vs oracle {}",
                        algo.name(),
                        g.score,
                        e.1
                    );
                }
            }
            let base = baseline_topk(&store, q, f.clone(), k);
            for (g, e) in base.entries.iter().zip(&expected) {
                assert!((g.score - e.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_zero_and_k_larger_than_population() {
        let (store, _, q) = random_store(9, 80, 40, 10, 2);
        let store = Arc::new(store);
        let f = WeightedSum::uniform(2);
        let none = topk_query(&store, q, f.clone(), 0, Algorithm::Cea);
        assert!(none.entries.is_empty());
        let all = topk_query(&store, q, f.clone(), 1000, Algorithm::Cea);
        assert_eq!(all.entries.len(), 10);
        // Scores are reported in ascending order.
        let s = scores(&all);
        assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn incremental_iterator_matches_batch_prefixes() {
        let (store, graph, q) = random_store(13, 150, 100, 60, 3);
        let store = Arc::new(store);
        let f = WeightedSum::new(vec![0.5, 0.3, 0.2]);
        let oracle = topk_oracle(&graph, q, &f, 20);
        let incremental: Vec<TopKEntry> = TopKIter::cea(store.clone(), q, f.clone())
            .take(20)
            .collect();
        assert_eq!(incremental.len(), 20);
        for (g, e) in incremental.iter().zip(&oracle) {
            assert!(
                (g.score - e.1).abs() < 1e-9,
                "incremental score {} vs oracle {}",
                g.score,
                e.1
            );
        }
        // The iterator can keep going and eventually report everything.
        let all: Vec<TopKEntry> = TopKIter::lsa(store.clone(), q, f.clone()).collect();
        assert_eq!(all.len(), graph.num_facilities());
        assert!(all.windows(2).all(|w| w[0].score <= w[1].score + 1e-12));
    }

    #[test]
    fn cea_does_not_read_more_than_lsa() {
        let (store, _, q) = random_store(31, 300, 200, 150, 4);
        let store = Arc::new(store);
        let f = WeightedSum::uniform(4);
        store.set_buffer(mcn_storage::BufferConfig::Pages(8));
        store.buffer().clear();
        let lsa = topk_query(&store, q, f.clone(), 4, Algorithm::Lsa);
        store.buffer().clear();
        let cea = topk_query(&store, q, f.clone(), 4, Algorithm::Cea);
        assert!(cea.stats.io.buffer_misses <= lsa.stats.io.buffer_misses);
        // Both return identical scores.
        for (a, b) in lsa.entries.iter().zip(&cea.entries) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_are_populated() {
        let (store, _, q) = random_store(3, 100, 50, 40, 2);
        let store = Arc::new(store);
        let r = topk_query(&store, q, WeightedSum::uniform(2), 4, Algorithm::Cea);
        assert_eq!(r.stats.algorithm, "CEA");
        assert_eq!(r.stats.result_size, 4);
        assert!(r.stats.pinned >= 4);
        assert!(r.stats.nodes_settled > 0);
    }
}
