//! Symbol resolution over the lexed workspace: struct fields, impl blocks
//! (inherent and trait, with generic-parameter bounds), trait→impl maps,
//! `use` imports and per-function local/parameter types.
//!
//! The resolver upgrades the rule engine from name-matching to
//! *receiver-typed* method resolution: `self.store.adjacency(node)` resolves
//! through the declared field type `Arc<S>` and the impl bound
//! `S: StoreView` to the `adjacency` methods of every `StoreView`
//! implementor, and nothing else. Resolution is deliberately conservative —
//! an unresolvable receiver falls back to every workspace method of that
//! name (minus a deny list of ubiquitous std names, where the std type is
//! the overwhelmingly likely target) so downstream closures over-approximate
//! rather than miss.
//!
//! Everything works on the token streams of [`crate::workspace::Workspace`]
//! files; there is no type inference beyond declared types, initializer
//! heads (`let x = Foo::new(…)`) and lock-guard propagation
//! (`let g = self.field.read()` gives `g` the lock's inner type).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Token;
use crate::source::{FnSpan, SourceFile};
use crate::workspace::Workspace;

/// Smart-pointer/marker layers skipped when finding a type's primary name:
/// the method receiver behind `Arc<dyn DiskManager>` is `DiskManager`.
const WRAPPERS: [&str; 9] = [
    "Arc", "Rc", "Box", "Option", "RefCell", "Cell", "Pin", "dyn", "impl",
];

/// Std container types: constructing or cloning one allocates.
pub const CONTAINER_TYPES: [&str; 11] = [
    "Vec",
    "VecDeque",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "PathBuf",
    "OsString",
];

/// Ubiquitous std method names: when a receiver cannot be typed, a call to
/// one of these almost certainly targets a std collection/primitive, so the
/// all-methods-of-that-name fallback is suppressed to avoid wiring, say,
/// every untyped `.get(…)` to `PrepCache::get`.
const COMMON_METHODS: [&str; 44] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "extend",
    "drain",
    "keys",
    "values",
    "entry",
    "sort",
    "sort_by",
    "sort_unstable",
    "map",
    "and_then",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "to_string",
    "to_vec",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "min",
    "max",
    "abs",
    "fmt",
];

/// One struct field: name plus the identifier sequence of its type
/// (`shards: Vec<Mutex<Shard>>` → `["Vec", "Mutex", "Shard"]`).
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name (tuple fields are `"0"`, `"1"`, …).
    pub name: String,
    /// Type identifiers in source order, wrappers and generics flattened.
    pub ty: Vec<String>,
}

/// One struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Index into `ws.files`.
    pub file: usize,
    /// Token index of the `struct` keyword.
    pub tok: usize,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
}

/// One `impl` block (or trait body, which acts as the impl of its own
/// default methods: `self_type` is the trait name, `trait_name` is `None`).
#[derive(Clone, Debug)]
pub struct ImplDef {
    /// Index into `ws.files`.
    pub file: usize,
    /// The implementing type's last path segment (`SharedAccess`).
    pub self_type: String,
    /// For `impl Trait for Type`, the trait's name.
    pub trait_name: Option<String>,
    /// Generic-parameter bounds: `S → StoreView` for `impl<S: StoreView>`.
    pub bounds: BTreeMap<String, String>,
    /// Token range `[open brace, one past close)` of the body.
    pub body: (usize, usize),
}

/// One function, globally indexed: the resolver's unit of resolution.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index into `ws.files`.
    pub file: usize,
    /// Index into that file's `fns`.
    pub span: usize,
    /// Crate directory name.
    pub crate_name: String,
    /// Enclosing impl/trait type, `None` for free functions.
    pub self_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Return-type identifiers (after `->`), empty for `()`.
    pub ret: Vec<String>,
    /// Generic bounds declared on the function itself.
    pub bounds: BTreeMap<String, String>,
    /// True when the function lives in test-only code.
    pub is_test: bool,
}

impl FnDef {
    /// `crate::Type::name` or `crate::name`, for reports and root seeding.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The resolved workspace model.
pub struct Resolver {
    /// Every struct definition.
    pub structs: Vec<StructDef>,
    /// Every impl block and trait body.
    pub impls: Vec<ImplDef>,
    /// Every function, in (file, span) order.
    pub fns: Vec<FnDef>,
    /// Per-function map from local/parameter name to type identifiers.
    pub locals: Vec<BTreeMap<String, Vec<String>>>,
    struct_by_name: BTreeMap<String, Vec<usize>>,
    /// Trait name → implementing type names (the trait itself included, so
    /// default methods resolve).
    trait_impls: BTreeMap<String, Vec<String>>,
    method_index: BTreeMap<(String, String), Vec<usize>>,
    free_index: BTreeMap<(String, String), Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
    container_structs: BTreeSet<String>,
}

impl Resolver {
    /// Builds the full model for a workspace.
    pub fn build(ws: &Workspace) -> Resolver {
        let mut structs = Vec::new();
        let mut impls = Vec::new();
        let mut traits: BTreeSet<String> = BTreeSet::new();
        for (fi, file) in ws.files.iter().enumerate() {
            parse_structs(file, fi, &mut structs);
            parse_impls_and_traits(file, fi, &mut impls, &mut traits);
        }

        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for t in &traits {
            // The trait's own body holds its default methods.
            trait_impls.insert(t.clone(), vec![t.clone()]);
        }
        for im in &impls {
            if let Some(t) = &im.trait_name {
                trait_impls
                    .entry(t.clone())
                    .or_default()
                    .push(im.self_type.clone());
            }
        }
        for v in trait_impls.values_mut() {
            v.sort();
            v.dedup();
        }

        // Functions: attribute each span to its innermost impl/trait body.
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (si, span) in file.fns.iter().enumerate() {
                let self_type = impls
                    .iter()
                    .filter(|im| im.file == fi && im.body.0 < span.start && span.end <= im.body.1)
                    .max_by_key(|im| im.body.0)
                    .map(|im| im.self_type.clone());
                let (ret, bounds) = parse_signature(&file.tokens, span);
                fns.push(FnDef {
                    file: fi,
                    span: si,
                    crate_name: file.crate_name.clone(),
                    self_type,
                    name: span.name.clone(),
                    ret,
                    bounds,
                    is_test: file.in_test_code(span.start),
                });
            }
        }

        let mut struct_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, s) in structs.iter().enumerate() {
            struct_by_name.entry(s.name.clone()).or_default().push(i);
        }
        let mut method_index: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_index: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            // A bodyless trait method *declaration* is not a callee — the
            // trait fan-out resolves to implementor bodies (and default
            // methods, which do have bodies).
            let span = &ws.files[f.file].fns[f.span];
            if span.body_start == span.end {
                continue;
            }
            match &f.self_type {
                Some(t) => {
                    method_index
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    method_by_name.entry(f.name.clone()).or_default().push(i);
                }
                None => free_index
                    .entry((f.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(i),
            }
        }

        // Container-ness propagates through struct fields: a struct holding
        // a Vec (directly or via another container struct) allocates when
        // cloned. `Copy` aggregates like CostVec never qualify.
        let mut container_structs: BTreeSet<String> = BTreeSet::new();
        loop {
            let mut grew = false;
            for s in &structs {
                if container_structs.contains(&s.name) {
                    continue;
                }
                let is_container = s.fields.iter().any(|f| {
                    f.ty.iter().any(|id| {
                        CONTAINER_TYPES.contains(&id.as_str())
                            || container_structs.contains(id.as_str())
                    })
                });
                if is_container {
                    container_structs.insert(s.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let mut r = Resolver {
            structs,
            impls,
            fns,
            locals: Vec::new(),
            struct_by_name,
            trait_impls,
            method_index,
            free_index,
            method_by_name,
            container_structs,
        };
        // Local typing uses receiver resolution (guard locals), so it runs
        // after the indexes exist; within a function the scan is
        // sequential, so earlier locals type later guard bindings.
        r.locals = (0..r.fns.len()).map(|i| r.collect_locals(ws, i)).collect();
        r
    }

    /// The struct definition for `name`, preferring the given crate.
    pub fn struct_def(&self, name: &str, prefer_crate: &str) -> Option<&StructDef> {
        let ids = self.struct_by_name.get(name)?;
        ids.iter()
            .map(|&i| &self.structs[i])
            .find(|s| s.crate_name == prefer_crate)
            .or_else(|| ids.first().map(|&i| &self.structs[i]))
    }

    /// True when `name` names a trait in the workspace.
    pub fn is_trait(&self, name: &str) -> bool {
        self.trait_impls.contains_key(name)
    }

    /// True when the identifier sequence denotes an allocating container:
    /// a std container or a workspace struct transitively holding one.
    /// `Arc`/`Rc` as the outermost layer shields a clone (refcount bump).
    pub fn is_container_type(&self, ty: &[String]) -> bool {
        if matches!(ty.first().map(String::as_str), Some("Arc") | Some("Rc")) {
            return false;
        }
        ty.iter().any(|id| {
            CONTAINER_TYPES.contains(&id.as_str()) || self.container_structs.contains(id.as_str())
        })
    }

    /// Candidate implementations of `name` on `ty` (a struct or trait).
    pub fn methods_of(&self, ty: &str, name: &str) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .method_index
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if let Some(impl_types) = self.trait_impls.get(ty) {
            for t in impl_types {
                if let Some(ids) = self.method_index.get(&(t.clone(), name.to_string())) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Free functions named `name`, preferring `crate_name`'s.
    pub fn free_fns(&self, crate_name: &str, name: &str) -> Vec<usize> {
        if let Some(ids) = self
            .free_index
            .get(&(crate_name.to_string(), name.to_string()))
        {
            return ids.clone();
        }
        let mut out = Vec::new();
        for ((_, n), ids) in &self.free_index {
            if n == name {
                out.extend_from_slice(ids);
            }
        }
        out
    }

    /// The primary (receiver) type name behind a declared type: wrappers
    /// skipped, generic parameters mapped through fn/impl bounds.
    pub fn primary_type(&self, fn_id: usize, ty: &[String]) -> Option<String> {
        let name = ty
            .iter()
            .find(|id| !WRAPPERS.contains(&id.as_str()))?
            .clone();
        let f = &self.fns[fn_id];
        if let Some(bound) = f.bounds.get(&name) {
            return Some(bound.clone());
        }
        let impl_bounds = self
            .impls
            .iter()
            .filter(|im| {
                im.file == f.file && im.self_type == *f.self_type.as_ref().unwrap_or(&String::new())
            })
            .find_map(|im| im.bounds.get(&name));
        if let Some(bound) = impl_bounds {
            return Some(bound.clone());
        }
        Some(name)
    }

    /// The declared type of `self.<field>` inside `fn_id`'s impl.
    pub fn self_field_type(&self, fn_id: usize, field: &str) -> Option<Vec<String>> {
        let f = &self.fns[fn_id];
        let self_type = f.self_type.as_deref()?;
        let s = self.struct_def(self_type, &f.crate_name)?;
        s.fields
            .iter()
            .find(|fd| fd.name == field)
            .map(|fd| fd.ty.clone())
    }

    /// Resolves the type (identifier sequence) of the postfix expression
    /// ending at token `end` of `fn_id`'s file. Handles locals, `self`,
    /// field chains, indexing and calls whose target resolves.
    pub fn postfix_type(&self, ws: &Workspace, fn_id: usize, end: usize) -> Option<Vec<String>> {
        self.postfix_type_inner(ws, fn_id, end, 0)
    }

    fn postfix_type_inner(
        &self,
        ws: &Workspace,
        fn_id: usize,
        end: usize,
        depth: usize,
    ) -> Option<Vec<String>> {
        if depth > 8 {
            return None;
        }
        let f = &self.fns[fn_id];
        let toks = &ws.files[f.file].tokens;
        let t = toks.get(end)?;
        if t.is_op(")") {
            let open = matching_open(toks, end, "(", ")")?;
            match toks.get(open.checked_sub(1)?) {
                Some(prev) if prev.ident().is_some() => {
                    // A call: type is the callee's return type.
                    let callees = self.resolve_call(ws, fn_id, open - 1, depth + 1);
                    return callees
                        .iter()
                        .map(|&c| self.fns[c].ret.clone())
                        .find(|r| !r.is_empty());
                }
                Some(prev) if prev.is_op(">") => {
                    // Turbofish call `name::<T>(…)`: resolve via the name.
                    let fish = matching_open_fish(toks, open - 1)?;
                    if toks.get(fish.checked_sub(1)?)?.ident().is_some() {
                        let callees = self.resolve_call(ws, fn_id, fish - 1, depth + 1);
                        return callees
                            .iter()
                            .map(|&c| self.fns[c].ret.clone())
                            .find(|r| !r.is_empty());
                    }
                    return None;
                }
                _ => {
                    // Parenthesized group: type of the inner expression.
                    return self.postfix_type_inner(ws, fn_id, end - 1, depth + 1);
                }
            }
        }
        if t.is_op("]") {
            let open = matching_open(toks, end, "[", "]")?;
            let base = self.postfix_type_inner(ws, fn_id, open.checked_sub(1)?, depth + 1)?;
            // Indexing strips one sequence layer: Vec<Mutex<T>>[i] → Mutex<T>.
            return match base.first().map(String::as_str) {
                Some("Vec") | Some("VecDeque") => Some(base[1..].to_vec()),
                _ => Some(base),
            };
        }
        let name = t.ident()?;
        if name == "self" {
            return f.self_type.clone().map(|t| vec![t]);
        }
        match toks.get(end.wrapping_sub(1)) {
            Some(prev) if prev.is_op(".") => {
                // Field access: resolve the base, then the field's type.
                let base = self.postfix_type_inner(ws, fn_id, end - 2, depth + 1)?;
                let base_name = self.primary_type(fn_id, &base)?;
                let s = self.struct_def(&base_name, &f.crate_name)?;
                s.fields
                    .iter()
                    .find(|fd| fd.name == name)
                    .map(|fd| fd.ty.clone())
            }
            Some(prev) if prev.is_op("::") => None, // path segment, not a value
            // `locals` is still empty while `collect_locals` itself types
            // guard bindings — fall back to None rather than index.
            _ => self.locals.get(fn_id).and_then(|m| m.get(name)).cloned(),
        }
    }

    /// Resolves the call whose callee identifier sits at token `idx` of
    /// `fn_id`'s file, returning candidate `FnDef` indices (empty =
    /// external). Handles `recv.m(…)`, `Type::m(…)`, `path::f(…)` and bare
    /// `f(…)` forms.
    pub fn resolve_call(
        &self,
        ws: &Workspace,
        fn_id: usize,
        idx: usize,
        depth: usize,
    ) -> Vec<usize> {
        if depth > 8 {
            return Vec::new();
        }
        let f = &self.fns[fn_id];
        let toks = &ws.files[f.file].tokens;
        let Some(name) = toks.get(idx).and_then(|t| t.ident()) else {
            return Vec::new();
        };
        match toks.get(idx.wrapping_sub(1)) {
            Some(prev) if idx > 0 && prev.is_op(".") => {
                // Method call: type the receiver.
                let recv = idx
                    .checked_sub(2)
                    .and_then(|e| self.postfix_type_inner(ws, fn_id, e, depth + 1));
                match recv.and_then(|ty| self.primary_type(fn_id, &ty)) {
                    Some(ty) => self.methods_of(&ty, name),
                    None if COMMON_METHODS.contains(&name)
                        || crate::rules::GUARD_METHODS.contains(&name) =>
                    {
                        Vec::new()
                    }
                    None => self.method_by_name.get(name).cloned().unwrap_or_default(),
                }
            }
            Some(prev) if idx > 0 && prev.is_op("::") => {
                // Qualified call: `Type::m(…)` or `module::f(…)`.
                let qualifier = toks.get(idx.wrapping_sub(2)).and_then(|t| t.ident());
                match qualifier {
                    Some("Self") => f
                        .self_type
                        .as_ref()
                        .map(|t| self.methods_of(t, name))
                        .unwrap_or_default(),
                    Some(q) if self.struct_by_name.contains_key(q) || self.is_trait(q) => {
                        self.methods_of(q, name)
                    }
                    _ => self.free_fns(&f.crate_name, name),
                }
            }
            _ => {
                // Bare call: a free function, unless it's a local (closure
                // parameter or binding) or a macro.
                if toks.get(idx + 1).is_some_and(|t| t.is_op("!")) {
                    return Vec::new();
                }
                if self.locals[fn_id].contains_key(name) {
                    return Vec::new();
                }
                self.free_fns(&f.crate_name, name)
            }
        }
    }

    /// Collects parameter and `let` types for one function.
    fn collect_locals(&self, ws: &Workspace, fn_id: usize) -> BTreeMap<String, Vec<String>> {
        let f = &self.fns[fn_id];
        let file = &ws.files[f.file];
        let span = &file.fns[f.span];
        let toks = &file.tokens;
        let mut locals: BTreeMap<String, Vec<String>> = BTreeMap::new();

        // Parameters: `name: Type` pairs at paren depth 1 of the signature.
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut k = span.start;
        while k < span.body_start.min(toks.len()) {
            let t = &toks[k];
            if t.is_op("(") {
                paren += 1;
            } else if t.is_op(")") {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            } else if t.is_op("<") || t.is_op("::<") {
                angle += 1;
            } else if t.is_op(">") {
                angle -= 1;
            } else if paren == 1
                && angle == 0
                && t.ident().is_some()
                && toks.get(k + 1).is_some_and(|n| n.is_op(":"))
            {
                let name = t.ident().unwrap_or_default().to_string();
                let (ty, next) = type_idents(toks, k + 2, &[",", ")"]);
                if !ty.is_empty() {
                    locals.insert(name, ty);
                }
                k = next;
                continue;
            }
            k += 1;
        }

        // `let` bindings in the body.
        let mut k = span.body_start;
        while k < span.end.min(toks.len()) {
            if !toks[k].is_ident("let") {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.ident()).map(str::to_string) else {
                k += 1;
                continue;
            };
            match toks.get(j + 1) {
                Some(t) if t.is_op(":") => {
                    // `let name: Type = …`
                    let (ty, _) = type_idents(toks, j + 2, &["=", ";"]);
                    if !ty.is_empty() {
                        locals.insert(name, ty);
                    }
                }
                Some(t) if t.is_op("=") => {
                    // `let name = Type::ctor(…)` — initializer head names the
                    // type; or `let g = recv.lock()` — guard gets the lock's
                    // inner type.
                    let head = toks.get(j + 2).and_then(|t| t.ident());
                    let is_ctor = toks.get(j + 3).is_some_and(|t| t.is_op("::"))
                        && toks.get(j + 4).and_then(|t| t.ident()).is_some_and(|m| {
                            matches!(m, "new" | "with_capacity" | "from" | "default" | "open")
                        })
                        && head.is_some_and(|h| h.chars().next().is_some_and(char::is_uppercase));
                    if is_ctor {
                        locals.insert(name, vec![head.unwrap_or_default().to_string()]);
                    } else if let Some((ty, _)) = self.guard_binding_type(ws, fn_id, toks, j + 2) {
                        locals.insert(name, ty);
                    }
                }
                _ => {}
            }
            k = j + 1;
        }
        locals
    }

    /// If the initializer starting at `from` is a plain chain ending in a
    /// no-arg guard-method call (`….lock()`, `….read()`, …), returns the
    /// inner type of the lock being acquired plus the call's close-paren
    /// index.
    fn guard_binding_type(
        &self,
        ws: &Workspace,
        fn_id: usize,
        toks: &[Token],
        from: usize,
    ) -> Option<(Vec<String>, usize)> {
        // Find the statement-ending `;` without crossing a depth-0 `{`.
        let mut depth = 0i32;
        let mut end = from;
        while end < toks.len() {
            let t = &toks[end];
            if t.is_op("(") || t.is_op("[") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") {
                depth -= 1;
            } else if depth <= 0 && (t.is_op(";") || t.is_op("{")) {
                break;
            }
            end += 1;
        }
        if !toks.get(end).is_some_and(|t| t.is_op(";")) || end < from + 4 {
            return None;
        }
        // The chain must end `… . m ( )` with a guard method.
        let close = end - 1;
        if !(toks[close].is_op(")")
            && toks[close - 1].is_op("(")
            && toks[close - 2]
                .ident()
                .is_some_and(|m| crate::rules::GUARD_METHODS.contains(&m))
            && toks[close - 3].is_op("."))
        {
            return None;
        }
        let recv_ty = self.postfix_type_inner(ws, fn_id, close - 4, 1)?;
        Some((lock_inner_type(&recv_ty)?, close))
    }
}

/// The identifiers following the first `Mutex`/`RwLock` in a type — the
/// guard's target type (`RwLock<ShardSet>` → `[ShardSet]`).
pub fn lock_inner_type(ty: &[String]) -> Option<Vec<String>> {
    let pos = ty.iter().position(|id| id == "Mutex" || id == "RwLock")?;
    let rest: Vec<String> = ty[pos + 1..].to_vec();
    if rest.is_empty() {
        None
    } else {
        Some(rest)
    }
}

/// True when a type mentions a lock.
pub fn is_lock_type(ty: &[String]) -> bool {
    ty.iter().any(|id| id == "Mutex" || id == "RwLock")
}

/// Collects the identifier sequence of a type starting at `from`, stopping
/// at any of `stops` at bracket depth 0. Braces always stop the scan at
/// depth 0 — a type can't contain one, and running past the close of a
/// struct body or into a block would flatten unrelated code into the type.
/// Returns the identifiers and the index of the stop token.
fn type_idents(toks: &[Token], from: usize, stops: &[&str]) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut k = from;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_op("<") || t.is_op("::<") || t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(">") || t.is_op(")") || t.is_op("]") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_op("{") || t.is_op("}")) {
            break;
        } else if depth == 0 && stops.iter().any(|s| t.is_op(s)) {
            break;
        } else if let Some(id) = t.ident() {
            if id != "mut" && id != "const" && id != "where" {
                out.push(id.to_string());
            }
        }
        k += 1;
    }
    (out, k)
}

/// The token index of the `(`/`[` matching the closer at `close`.
fn matching_open(toks: &[Token], close: usize, open: &str, close_op: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let t = toks.get(k)?;
        if t.is_op(close_op) {
            depth += 1;
        } else if t.is_op(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// For a `>` at `close` ending a turbofish, the index of its `::<`.
fn matching_open_fish(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let t = toks.get(k)?;
        if t.is_op(">") {
            depth += 1;
        } else if t.is_op("<") || t.is_op("::<") {
            depth -= 1;
            if depth == 0 {
                return t.is_op("::<").then_some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// Parses struct definitions (named and tuple fields) out of one file.
fn parse_structs(file: &SourceFile, fi: usize, out: &mut Vec<StructDef>) {
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if !toks[k].is_ident("struct") {
            continue;
        }
        // `struct` in a function pointer type or similar has no name ident.
        let Some(name) = toks.get(k + 1).and_then(|t| t.ident()).map(str::to_string) else {
            continue;
        };
        let mut j = k + 2;
        // Skip generic parameters.
        if toks.get(j).is_some_and(|t| t.is_op("<")) {
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_op("<") || toks[j].is_op("::<") {
                    angle += 1;
                } else if toks[j].is_op(">") {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let mut fields = Vec::new();
        match toks.get(j) {
            Some(t) if t.is_op("{") => {
                let end = crate::source::matching_close(toks, j) - 1;
                let mut m = j + 1;
                while m < end.min(toks.len()) {
                    // A field is `ident :` at depth 0 (visibility skipped).
                    if toks[m].ident().is_some()
                        && !toks[m].is_ident("pub")
                        && toks.get(m + 1).is_some_and(|t| t.is_op(":"))
                    {
                        let fname = toks[m].ident().unwrap_or_default().to_string();
                        let (ty, next) = type_idents(toks, m + 2, &[","]);
                        fields.push(FieldDef { name: fname, ty });
                        m = next + 1;
                        continue;
                    }
                    m += 1;
                }
            }
            Some(t) if t.is_op("(") => {
                let mut m = j + 1;
                let mut index = 0usize;
                loop {
                    let (ty, next) = type_idents(toks, m, &[","]);
                    if !ty.is_empty() {
                        fields.push(FieldDef {
                            name: index.to_string(),
                            ty,
                        });
                        index += 1;
                    }
                    if !toks.get(next).is_some_and(|t| t.is_op(",")) {
                        break;
                    }
                    m = next + 1;
                }
            }
            _ => {}
        }
        out.push(StructDef {
            name,
            crate_name: file.crate_name.clone(),
            file: fi,
            tok: k,
            line: toks[k].line,
            fields,
        });
    }
}

/// Parses impl blocks and trait bodies out of one file.
fn parse_impls_and_traits(
    file: &SourceFile,
    fi: usize,
    impls: &mut Vec<ImplDef>,
    traits: &mut BTreeSet<String>,
) {
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if toks[k].is_ident("trait") {
            if let Some(name) = toks.get(k + 1).and_then(|t| t.ident()) {
                traits.insert(name.to_string());
                // The trait body acts as the "impl" of default methods.
                let mut j = k + 2;
                while j < toks.len() && !toks[j].is_op("{") && !toks[j].is_op(";") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_op("{")) {
                    impls.push(ImplDef {
                        file: fi,
                        self_type: name.to_string(),
                        trait_name: None,
                        bounds: BTreeMap::new(),
                        body: (j, crate::source::matching_close(toks, j)),
                    });
                }
            }
            continue;
        }
        if !toks[k].is_ident("impl") {
            continue;
        }
        let mut j = k + 1;
        let mut bounds = BTreeMap::new();
        if toks.get(j).is_some_and(|t| t.is_op("<")) {
            j = parse_generic_bounds(toks, j, &mut bounds);
        }
        // Collect path segments until `for`, `where` or `{` at depth 0;
        // the last depth-0 ident of each run is the type/trait name.
        let mut first_run: Option<String> = None;
        let mut current: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_op("<") || t.is_op("::<") {
                angle += 1;
            } else if t.is_op(">") {
                angle -= 1;
            } else if angle <= 0 {
                if t.is_op("{") || t.is_ident("where") {
                    break;
                }
                if t.is_ident("for") {
                    first_run = current.take();
                    saw_for = true;
                } else if let Some(id) = t.ident() {
                    if id != "dyn" && id != "mut" {
                        current = Some(id.to_string());
                    }
                }
            }
            j += 1;
        }
        // Skip a where clause (collecting its bounds too).
        if toks.get(j).is_some_and(|t| t.is_ident("where")) {
            let mut m = j + 1;
            let mut angle = 0i32;
            while m < toks.len() {
                let t = &toks[m];
                if t.is_op("<") || t.is_op("::<") {
                    angle += 1;
                } else if t.is_op(">") {
                    angle -= 1;
                } else if angle <= 0 && t.is_op("{") {
                    break;
                } else if angle <= 0
                    && t.ident().is_some()
                    && toks.get(m + 1).is_some_and(|n| n.is_op(":"))
                {
                    if let Some(b) = first_bound(toks, m + 2) {
                        bounds.insert(t.ident().unwrap_or_default().to_string(), b);
                    }
                }
                m += 1;
            }
            j = m;
        }
        let Some(t) = toks.get(j) else { continue };
        if !t.is_op("{") {
            continue;
        }
        let (trait_name, self_type) = if saw_for {
            (first_run, current)
        } else {
            (None, current)
        };
        let Some(self_type) = self_type else { continue };
        impls.push(ImplDef {
            file: fi,
            self_type,
            trait_name,
            bounds,
            body: (j, crate::source::matching_close(toks, j)),
        });
    }
}

/// Parses `<P: Bound, Q: Other + ?Sized>` into `bounds`; returns the index
/// one past the closing `>`.
fn parse_generic_bounds(
    toks: &[Token],
    open: usize,
    bounds: &mut BTreeMap<String, String>,
) -> usize {
    let mut angle = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_op("<") || t.is_op("::<") {
            angle += 1;
        } else if t.is_op(">") {
            angle -= 1;
            if angle == 0 {
                return j + 1;
            }
        } else if angle == 1 && t.ident().is_some() && toks.get(j + 1).is_some_and(|n| n.is_op(":"))
        {
            if let Some(b) = first_bound(toks, j + 2) {
                bounds.insert(t.ident().unwrap_or_default().to_string(), b);
            }
        }
        j += 1;
    }
    j
}

/// The first named (non-`?Sized`, non-lifetime, non-marker) bound at `from`.
fn first_bound(toks: &[Token], from: usize) -> Option<String> {
    let mut k = from;
    let mut depth = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_op("<") || t.is_op("::<") || t.is_op("(") {
            depth += 1;
        } else if t.is_op(">") || t.is_op(")") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_op(",") || t.is_op("{") || t.is_ident("where")) {
            break;
        } else if depth == 0 {
            if let Some(id) = t.ident() {
                if !matches!(id, "Sized" | "Send" | "Sync" | "Copy" | "Clone") {
                    return Some(id.to_string());
                }
            }
        }
        k += 1;
    }
    None
}

/// Parses a function signature's return-type identifiers and generic bounds.
fn parse_signature(toks: &[Token], span: &FnSpan) -> (Vec<String>, BTreeMap<String, String>) {
    let mut bounds = BTreeMap::new();
    let mut ret = Vec::new();
    let mut k = span.start + 2;
    if toks.get(k).is_some_and(|t| t.is_op("<")) {
        k = parse_generic_bounds(toks, k, &mut bounds);
    }
    // Find `->` at paren depth 0 before the body.
    let mut paren = 0i32;
    while k < span.body_start.min(toks.len()) {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") {
            paren += 1;
        } else if t.is_op(")") || t.is_op("]") {
            paren -= 1;
        } else if paren <= 0 && t.is_op("->") {
            let (r, _) = type_idents(toks, k + 1, &["{", ";"]);
            ret = r;
            break;
        }
        k += 1;
    }
    (ret, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn model(files: &[(&str, &str)]) -> (Workspace, Resolver) {
        let ws = Workspace::from_files(
            files
                .iter()
                .map(|(p, t)| SourceFile::from_str(p, t))
                .collect(),
        );
        let r = Resolver::build(&ws);
        (ws, r)
    }

    #[test]
    fn struct_fields_and_impl_attribution() {
        let (_, r) = model(&[(
            "crates/x/src/lib.rs",
            concat!(
                "pub struct Pool { shards: Vec<Mutex<Shard>>, disk: Arc<dyn Disk> }\n",
                "impl Pool {\n",
                "    fn with_page(&self) -> u32 { 1 }\n",
                "}\n",
            ),
        )]);
        let pool = r.struct_def("Pool", "x").expect("Pool parsed");
        assert_eq!(pool.fields[0].name, "shards");
        assert_eq!(pool.fields[0].ty, vec!["Vec", "Mutex", "Shard"]);
        assert_eq!(pool.fields[1].ty, vec!["Arc", "dyn", "Disk"]);
        let f = r.fns.iter().find(|f| f.name == "with_page").unwrap();
        assert_eq!(f.self_type.as_deref(), Some("Pool"));
        assert_eq!(f.ret, vec!["u32"]);
    }

    #[test]
    fn trait_bound_receivers_fan_out_to_impls() {
        let (ws, r) = model(&[(
            "crates/x/src/lib.rs",
            concat!(
                "trait View { fn adjacency(&self) -> u32; }\n",
                "pub struct Mono;\n",
                "impl View for Mono { fn adjacency(&self) -> u32 { 1 } }\n",
                "pub struct Part;\n",
                "impl View for Part { fn adjacency(&self) -> u32 { 2 } }\n",
                "pub struct Holder<S: View> { store: Arc<S> }\n",
                "impl<S: View> Holder<S> {\n",
                "    fn go(&self) -> u32 { self.store.adjacency() }\n",
                "}\n",
            ),
        )]);
        let go = r.fns.iter().position(|f| f.name == "go").unwrap();
        let file = &ws.files[0];
        // Find the `adjacency` call token inside `go`.
        let span = &file.fns[r.fns[go].span];
        let call = (span.body_start..span.end)
            .find(|&k| file.tokens[k].is_ident("adjacency"))
            .unwrap();
        let cands = r.resolve_call(&ws, go, call, 0);
        let names: Vec<String> = cands.iter().map(|&c| r.fns[c].qualified()).collect();
        assert_eq!(names, vec!["x::Mono::adjacency", "x::Part::adjacency"]);
    }

    #[test]
    fn guard_locals_get_the_lock_inner_type() {
        let (ws, r) = model(&[(
            "crates/x/src/lib.rs",
            concat!(
                "pub struct Set { inner: Vec<u32> }\n",
                "impl Set { fn shard_of(&self) -> u32 { 0 } }\n",
                "pub struct Pool { shards: RwLock<Set> }\n",
                "impl Pool {\n",
                "    fn go(&self) -> u32 {\n",
                "        let set = self.shards.read();\n",
                "        set.shard_of()\n",
                "    }\n",
                "}\n",
            ),
        )]);
        let go = r.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(r.locals[go].get("set"), Some(&vec!["Set".to_string()]));
        let file = &ws.files[0];
        let span = &file.fns[r.fns[go].span];
        let call = (span.body_start..span.end)
            .find(|&k| file.tokens[k].is_ident("shard_of"))
            .unwrap();
        let cands = r.resolve_call(&ws, go, call, 0);
        assert_eq!(cands.len(), 1);
        assert_eq!(r.fns[cands[0]].qualified(), "x::Set::shard_of");
    }

    #[test]
    fn unresolved_common_method_does_not_fan_out() {
        let (ws, r) = model(&[(
            "crates/x/src/lib.rs",
            concat!(
                "pub struct Cache;\n",
                "impl Cache { fn get(&self) -> u32 { 1 } }\n",
                "fn untyped(m: &SomeMap) -> u32 { m.get() }\n",
            ),
        )]);
        let untyped = r.fns.iter().position(|f| f.name == "untyped").unwrap();
        let file = &ws.files[0];
        let span = &file.fns[r.fns[untyped].span];
        let call = (span.body_start..span.end)
            .find(|&k| file.tokens[k].is_ident("get"))
            .unwrap();
        // `m` is typed `SomeMap` (unknown struct) — no workspace match, and
        // `get` is too common for the name fallback.
        assert!(r.resolve_call(&ws, untyped, call, 0).is_empty());
    }

    #[test]
    fn container_types_propagate_through_structs() {
        let (_, r) = model(&[(
            "crates/x/src/lib.rs",
            concat!(
                "pub struct Label { edges: Vec<u32> }\n",
                "pub struct Wrapper { label: Label }\n",
                "pub struct Flat { a: f64, b: u64 }\n",
            ),
        )]);
        assert!(r.is_container_type(&["Label".to_string()]));
        assert!(r.is_container_type(&["Wrapper".to_string()]));
        assert!(!r.is_container_type(&["Flat".to_string()]));
        // Arc shields a clone.
        assert!(!r.is_container_type(&["Arc".to_string(), "Label".to_string()]));
    }
}
