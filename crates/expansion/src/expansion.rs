//! Incremental network expansion: Dijkstra-based nearest-facility search.
//!
//! This is the *network expansion* (NE) primitive of Papadias et al. (VLDB'03)
//! that both LSA and CEA are built on (paper Section II-C): starting from the
//! query location, nodes are settled in increasing distance order w.r.t. one
//! cost type; when a node is settled, the facilities on its incident edges are
//! pushed into the same heap with their network distance, so facilities pop
//! out of the heap in increasing nearest-neighbour order.

use crate::access::NetworkAccess;
use crate::seeds::Seeds;
use mcn_graph::{EdgeId, FacilityId, NodeId};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// How an expansion discovers facilities.
#[derive(Clone)]
pub enum FacilityMode {
    /// Load and en-heap every facility on every traversed edge (growing stage).
    All,
    /// Do not touch the facility file; only the candidate facilities listed
    /// here (keyed by their containing edge, with their fractional position)
    /// are en-heaped when their edge is traversed. This implements the
    /// shrinking-stage optimisation of Section IV-A.
    CandidatesOnly(Arc<HashMap<EdgeId, Vec<(FacilityId, f64)>>>),
    /// Ignore facilities entirely (plain one-to-all Dijkstra).
    Ignore,
}

/// One step of progress of an expansion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExpansionStep {
    /// A facility was reached; its network distance w.r.t. this expansion's
    /// cost type is final.
    Facility {
        /// The facility.
        facility: FacilityId,
        /// Its network distance from the query location.
        cost: f64,
    },
    /// A network node was settled (its adjacency information was consumed).
    NodeSettled {
        /// The node.
        node: NodeId,
        /// Its network distance from the query location.
        cost: f64,
    },
    /// The expansion frontier is empty; nothing remains to be discovered.
    Exhausted,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum HeapItem {
    Node(NodeId),
    Facility(FacilityId),
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    key: f64,
    item: HeapItem,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest key pops first.
        // Ties: facilities before nodes, then by identifier, for determinism.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| {
                let rank = |i: &HeapItem| match i {
                    HeapItem::Facility(_) => 0u8,
                    HeapItem::Node(_) => 1u8,
                };
                rank(&other.item).cmp(&rank(&self.item))
            })
            .then_with(|| {
                let id = |i: &HeapItem| match i {
                    HeapItem::Facility(f) => f.raw(),
                    HeapItem::Node(n) => n.raw(),
                };
                id(&other.item).cmp(&id(&self.item))
            })
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters describing the work performed by one expansion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Nodes settled (adjacency records consumed).
    pub nodes_settled: usize,
    /// Heap pushes.
    pub heap_pushes: usize,
    /// Heap pops.
    pub heap_pops: usize,
    /// Facilities emitted.
    pub facilities_emitted: usize,
}

/// An incremental single-cost network expansion.
///
/// Created via [`Expansion::new`] with the seeds of a query location, it
/// yields the nearest facilities one at a time ([`Expansion::next_nearest`]),
/// or advances in finer-grained steps ([`Expansion::advance`]) as required by
/// the top-k shrinking stage.
pub struct Expansion<A: NetworkAccess> {
    access: Arc<A>,
    cost_type: usize,
    facility_mode: FacilityMode,
    heap: BinaryHeap<HeapEntry>,
    /// Best known (not necessarily final) distance per node.
    best: HashMap<NodeId, f64>,
    /// Nodes whose distance is final and whose adjacency has been consumed.
    settled: HashSet<NodeId>,
    /// Facilities already reported (a facility can be en-heaped from both
    /// end-nodes of its edge).
    emitted: HashSet<FacilityId>,
    /// Best facility key seen so far, for de-duplicated en-heaping.
    facility_best: HashMap<FacilityId, f64>,
    stats: ExpansionStats,
}

const _: () = crate::assert_send_sync::<Expansion<crate::DirectAccess>>();

impl<A: NetworkAccess> Expansion<A> {
    /// Creates an expansion for `cost_type` starting from the given seeds.
    ///
    /// # Panics
    /// Panics if `cost_type` is not a valid cost index for the network.
    pub fn new(
        access: Arc<A>,
        cost_type: usize,
        seeds: &Seeds,
        facility_mode: FacilityMode,
    ) -> Self {
        assert!(
            cost_type < access.num_cost_types(),
            "cost type {cost_type} out of range (d = {})",
            access.num_cost_types()
        );
        let mut ex = Self {
            access,
            cost_type,
            facility_mode,
            heap: BinaryHeap::new(),
            best: HashMap::new(),
            settled: HashSet::new(),
            emitted: HashSet::new(),
            facility_best: HashMap::new(),
            stats: ExpansionStats::default(),
        };
        for (node, costs) in &seeds.node_seeds {
            ex.push_node(*node, costs[cost_type]);
        }
        for (facility, costs) in &seeds.facility_seeds {
            ex.push_facility(*facility, costs[cost_type]);
        }
        ex
    }

    /// The cost type this expansion searches on.
    pub fn cost_type(&self) -> usize {
        self.cost_type
    }

    /// Work counters.
    pub fn stats(&self) -> ExpansionStats {
        self.stats
    }

    /// Smallest key currently in the frontier, i.e. a lower bound on the cost
    /// of the next facility this expansion can return (the paper's `tᵢ`).
    /// `None` when the frontier is exhausted.
    pub fn frontier_bound(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    /// True iff nothing remains in the frontier.
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty()
    }

    /// Replaces the facility mode (used when a query transitions from the
    /// growing to the shrinking stage).
    pub fn set_facility_mode(&mut self, mode: FacilityMode) {
        self.facility_mode = mode;
    }

    fn push_node(&mut self, node: NodeId, key: f64) {
        match self.best.entry(node) {
            Entry::Occupied(mut o) => {
                if key < *o.get() {
                    o.insert(key);
                } else {
                    return;
                }
            }
            Entry::Vacant(v) => {
                v.insert(key);
            }
        }
        self.heap.push(HeapEntry {
            key,
            item: HeapItem::Node(node),
        });
        self.stats.heap_pushes += 1;
    }

    fn push_facility(&mut self, facility: FacilityId, key: f64) {
        if self.emitted.contains(&facility) {
            return;
        }
        match self.facility_best.entry(facility) {
            Entry::Occupied(mut o) => {
                if key < *o.get() {
                    o.insert(key);
                } else {
                    return;
                }
            }
            Entry::Vacant(v) => {
                v.insert(key);
            }
        }
        self.heap.push(HeapEntry {
            key,
            item: HeapItem::Facility(facility),
        });
        self.stats.heap_pushes += 1;
    }

    /// En-heaps the facilities of an edge being relaxed from a node sitting at
    /// distance `base`, according to the facility mode. `position_cost` maps a
    /// facility's fractional position to the fraction of the edge that has to
    /// be traversed to reach it from that node.
    fn push_edge_facilities(
        &mut self,
        edge: EdgeId,
        edge_cost: f64,
        position_cost: impl Fn(f64) -> f64,
        run: Option<&mcn_storage::FacilityRun>,
        base: f64,
    ) {
        let targets: Vec<(FacilityId, f64)> = match &self.facility_mode {
            FacilityMode::Ignore => return,
            FacilityMode::All => match run {
                // mcn-lint: allow(hot-path-alloc, reason = "materializes the per-edge run once per edge settle, not per label; push_facility below needs &mut self, so the Arc borrow cannot be held instead")
                Some(run) => self.access.facilities_in_run(run).iter().copied().collect(),
                None => return,
            },
            FacilityMode::CandidatesOnly(by_edge) => match by_edge.get(&edge) {
                // mcn-lint: allow(hot-path-alloc, reason = "clones the short per-edge candidate list so push_facility can take &mut self; bounded by candidates on one edge")
                Some(cands) => cands.clone(),
                None => return,
            },
        };
        for (fid, pos) in targets {
            self.push_facility(fid, base + position_cost(pos) * edge_cost);
        }
    }

    /// Performs one unit of work: pops the heap until something meaningful
    /// happens (a facility is reached, a node is settled, or the frontier is
    /// exhausted). Stale heap entries are skipped silently.
    pub fn advance(&mut self) -> ExpansionStep {
        loop {
            let Some(entry) = self.heap.pop() else {
                return ExpansionStep::Exhausted;
            };
            self.stats.heap_pops += 1;
            match entry.item {
                HeapItem::Facility(fid) => {
                    // Skip stale entries (a better key was en-heaped later).
                    if self.emitted.contains(&fid)
                        || self
                            .facility_best
                            .get(&fid)
                            .is_some_and(|&best| entry.key > best)
                    {
                        continue;
                    }
                    self.emitted.insert(fid);
                    self.stats.facilities_emitted += 1;
                    return ExpansionStep::Facility {
                        facility: fid,
                        cost: entry.key,
                    };
                }
                HeapItem::Node(node) => {
                    if self.settled.contains(&node) {
                        continue;
                    }
                    if self.best.get(&node).is_some_and(|&best| entry.key > best) {
                        continue;
                    }
                    self.settled.insert(node);
                    self.stats.nodes_settled += 1;
                    self.expand_node(node, entry.key);
                    return ExpansionStep::NodeSettled {
                        node,
                        cost: entry.key,
                    };
                }
            }
        }
    }

    fn expand_node(&mut self, node: NodeId, dist: f64) {
        let adjacency = self.access.adjacency(node);
        for e in &adjacency.entries {
            // Facilities on the edge are reachable from this end-node as long
            // as movement towards them is allowed: from the edge's source any
            // facility is reachable; from the target only if undirected.
            // `traversable` tells us whether we may leave `node` via this edge.
            let edge_cost = e.costs[self.cost_type];
            if e.traversable {
                self.push_node(e.neighbor, dist + edge_cost);
            }
            let run = e.facilities;
            // Position of a facility is the fraction from the edge's *source*.
            // If `node` is the source, partial weight = pos · w; otherwise
            // (node is the target) it is (1 − pos) · w. We recover which end
            // `node` is by asking the access layer only when facilities exist.
            if matches!(self.facility_mode, FacilityMode::Ignore) {
                continue;
            }
            let has_candidates = match &self.facility_mode {
                FacilityMode::CandidatesOnly(by_edge) => by_edge.contains_key(&e.edge),
                FacilityMode::All => run.is_some(),
                FacilityMode::Ignore => false,
            };
            if !has_candidates {
                continue;
            }
            let endpoints = self
                .access
                .edge_endpoints(e.edge)
                .expect("edge present in the edge index");
            let node_is_source = endpoints.source == node;
            // On a directed edge, facilities can only be reached from the
            // source side (movement is source → target).
            if endpoints.directed && !node_is_source {
                continue;
            }
            if node_is_source {
                self.push_edge_facilities(e.edge, edge_cost, |pos| pos, run.as_ref(), dist);
            } else {
                self.push_edge_facilities(e.edge, edge_cost, |pos| 1.0 - pos, run.as_ref(), dist);
            }
        }
    }

    /// Advances until the next nearest facility is found, returning it together
    /// with its cost, or `None` when the network is exhausted.
    pub fn next_nearest(&mut self) -> Option<(FacilityId, f64)> {
        loop {
            match self.advance() {
                ExpansionStep::Facility { facility, cost } => return Some((facility, cost)),
                ExpansionStep::NodeSettled { .. } => continue,
                ExpansionStep::Exhausted => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use crate::seeds::seeds_for_location;
    use mcn_graph::{CostVec, GraphBuilder, NetworkLocation};
    use mcn_storage::{BufferConfig, MCNStore};

    /// Line network: v0 -(2,10)- v1 -(2,10)- v2 -(2,10)- v3, facilities:
    /// p0 at 0.5 on edge 0, p1 at 0.5 on edge 2.
    fn line_store() -> (Arc<MCNStore>, mcn_graph::MultiCostGraph) {
        let mut b = GraphBuilder::new(2);
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        let mut edges = Vec::new();
        for w in n.windows(2) {
            edges.push(
                b.add_edge(w[0], w[1], CostVec::from_slice(&[2.0, 10.0]))
                    .unwrap(),
            );
        }
        b.add_facility(edges[0], 0.5).unwrap();
        b.add_facility(edges[2], 0.5).unwrap();
        let g = b.build().unwrap();
        let store = Arc::new(MCNStore::build_in_memory(&g, BufferConfig::Pages(16)).unwrap());
        (store, g)
    }

    #[test]
    fn facilities_pop_in_distance_order() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let mut ex = Expansion::new(access, 0, &seeds, FacilityMode::All);
        // p0 is 1.0 away (half of edge 0), p1 is 2 + 2 + 1 = 5.0 away.
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(0), 1.0)));
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 5.0)));
        assert_eq!(ex.next_nearest(), None);
        assert!(ex.is_exhausted());
    }

    #[test]
    fn different_cost_types_scale_distances() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let mut ex = Expansion::new(access, 1, &seeds, FacilityMode::All);
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(0), 5.0)));
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 25.0)));
    }

    #[test]
    fn query_in_edge_interior_uses_partial_weights() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        // Query at 0.25 along edge 1 (between v1 and v2).
        let seeds = seeds_for_location(
            access.as_ref(),
            NetworkLocation::on_edge(EdgeId::new(1), 0.25),
        );
        let mut ex = Expansion::new(access, 0, &seeds, FacilityMode::All);
        // To p0: 0.25·2 back to v1, 1·2 to mid of edge 0 → wait: v1→p0 is half
        // of edge 0 = 1.0, so total 0.5 + 1.0 = 1.5.
        // To p1: 0.75·2 to v2 + 1.0 = 2.5.
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(0), 1.5)));
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 2.5)));
    }

    #[test]
    fn candidates_only_mode_skips_other_facilities() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let mut by_edge: HashMap<EdgeId, Vec<(FacilityId, f64)>> = HashMap::new();
        by_edge.insert(EdgeId::new(2), vec![(FacilityId::new(1), 0.5)]);
        let mut ex = Expansion::new(
            access,
            0,
            &seeds,
            FacilityMode::CandidatesOnly(Arc::new(by_edge)),
        );
        // p0 is skipped entirely; the first facility found is p1.
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 5.0)));
        assert_eq!(ex.next_nearest(), None);
    }

    #[test]
    fn ignore_mode_is_plain_dijkstra() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let mut ex = Expansion::new(access, 0, &seeds, FacilityMode::Ignore);
        let mut settled = Vec::new();
        loop {
            match ex.advance() {
                ExpansionStep::NodeSettled { node, cost } => settled.push((node, cost)),
                ExpansionStep::Facility { .. } => panic!("facilities must be ignored"),
                ExpansionStep::Exhausted => break,
            }
        }
        assert_eq!(
            settled,
            vec![
                (NodeId::new(0), 0.0),
                (NodeId::new(1), 2.0),
                (NodeId::new(2), 4.0),
                (NodeId::new(3), 6.0),
            ]
        );
    }

    #[test]
    fn frontier_bound_is_monotone() {
        let (store, _) = line_store();
        let access = Arc::new(DirectAccess::new(store));
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(NodeId::new(0)));
        let mut ex = Expansion::new(access, 0, &seeds, FacilityMode::All);
        let mut last = 0.0;
        while let Some(bound) = ex.frontier_bound() {
            assert!(bound + 1e-12 >= last, "frontier bound decreased");
            last = bound;
            if matches!(ex.advance(), ExpansionStep::Exhausted) {
                break;
            }
        }
    }

    #[test]
    fn directed_edges_are_not_traversed_backwards() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(2.0, 0.0);
        // a → c directed, c — d undirected; a facility on each edge.
        let e0 = b
            .add_directed_edge(a, c, CostVec::from_slice(&[4.0]))
            .unwrap();
        let e1 = b.add_edge(c, d, CostVec::from_slice(&[4.0])).unwrap();
        b.add_facility(e0, 0.5).unwrap();
        b.add_facility(e1, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = Arc::new(MCNStore::build_in_memory(&g, BufferConfig::Pages(8)).unwrap());
        let access = Arc::new(DirectAccess::new(store));

        // From c, the directed edge back to a cannot be traversed, and its
        // facility (p0, sitting "behind" the direction of travel) is not
        // reachable via that edge either.
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(c));
        let mut ex = Expansion::new(access.clone(), 0, &seeds, FacilityMode::All);
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 2.0)));
        assert_eq!(ex.next_nearest(), None);

        // From a, both facilities are reachable.
        let seeds = seeds_for_location(access.as_ref(), NetworkLocation::Node(a));
        let mut ex = Expansion::new(access, 0, &seeds, FacilityMode::All);
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(0), 2.0)));
        assert_eq!(ex.next_nearest(), Some((FacilityId::new(1), 6.0)));
    }
}
