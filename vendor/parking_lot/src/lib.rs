//! Offline shim with `parking_lot`'s API surface, backed by `std::sync`.
//!
//! The workspace vendors this crate because the build environment has no
//! access to crates.io. Only the surface the workspace actually uses is
//! provided: [`Mutex`] / [`RwLock`] whose guards are returned directly
//! (no `Result`, matching parking_lot's poison-free semantics — a poisoned
//! std lock is recovered transparently).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
