//! CLI driver.
//!
//! ```text
//! mcn-analyze check [--root PATH] [--baseline PATH] [--lock-order PATH]
//!                   [--format text|json] [--update]
//! mcn-analyze list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` new or stale findings / lock edges (or an
//! I/O error), `2` usage error. JSON output is deterministic: findings
//! are sorted by (file, line, rule) and lock edges by (from, to) before
//! printing.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use mcn_analyze::rules::RULE_DOCS;
use mcn_analyze::workspace::Workspace;
use mcn_analyze::CheckOutcome;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcn-analyze check [--root PATH] [--baseline PATH]\n\
         \x20                        [--lock-order PATH] [--format text|json] [--update]\n\
         \x20      mcn-analyze list-rules\n\
         \n\
         `check` runs the workspace invariant lints, diffs the findings\n\
         against the checked-in baseline (crates/analyze/analyze-baseline.json)\n\
         and the lock acquisition-order edges against\n\
         crates/analyze/lock-order.json. --update rewrites both files to\n\
         accept the current state. --format json emits a machine-readable\n\
         report with stable ordering.\n\
         \n\
         `list-rules` prints every rule with its summary and whether a\n\
         `// mcn-lint: allow(rule, reason = \"...\")` comment can suppress it."
    );
    ExitCode::from(2)
}

fn list_rules() -> ExitCode {
    let width = RULE_DOCS.iter().map(|d| d.name.len()).max().unwrap_or(0);
    for doc in &RULE_DOCS {
        println!(
            "{:width$}  [{}]  {}",
            doc.name,
            if doc.suppressible {
                "suppressible"
            } else {
                "always-on  "
            },
            doc.summary,
        );
    }
    ExitCode::SUCCESS
}

/// Serializes the outcome by hand: a stable, diff-friendly shape without
/// growing serde derives on `Diff`.
fn json_report(outcome: &CheckOutcome) -> String {
    let mut s = String::from("{\n");
    let section = |name: &str, items: &[mcn_analyze::Finding]| {
        let body: Vec<String> = items
            .iter()
            .map(|f| serde::json::to_string_pretty(f))
            .map(|j| indent(&j, 4))
            .collect();
        format!("  \"{}\": [\n{}\n  ]", name, body.join(",\n"))
    };
    let stale_section = |name: &str, items: &[mcn_analyze::baseline::BaselineEntry]| {
        let body: Vec<String> = items
            .iter()
            .map(|e| serde::json::to_string_pretty(e))
            .map(|j| indent(&j, 4))
            .collect();
        format!("  \"{}\": [\n{}\n  ]", name, body.join(",\n"))
    };
    let edge_section = |name: &str, items: &[mcn_analyze::locks::LockEdge]| {
        let body: Vec<String> = items
            .iter()
            .map(|e| serde::json::to_string_pretty(e))
            .map(|j| indent(&j, 4))
            .collect();
        format!("  \"{}\": [\n{}\n  ]", name, body.join(",\n"))
    };
    let mut parts = Vec::new();
    parts.push(format!("  \"files\": {}", outcome.files));
    parts.push(format!(
        "  \"clean\": {}",
        if outcome.is_clean() { "true" } else { "false" }
    ));
    parts.push(section("findings", &outcome.findings));
    parts.push(section("new", &outcome.diff.new));
    parts.push(stale_section("stale", &outcome.diff.stale));
    parts.push(edge_section("lock_edges", &outcome.lock_edges));
    parts.push(edge_section("lock_new", &outcome.lock_new));
    parts.push(edge_section("lock_stale", &outcome.lock_stale));
    s.push_str(&parts.join(",\n"));
    s.push_str("\n}");
    s
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some("list-rules") => {
            return if args.next().is_none() {
                list_rules()
            } else {
                usage()
            }
        }
        _ => return usage(),
    }
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut lock_order: Option<PathBuf> = None;
    let mut json = false;
    let mut update = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--lock-order" => match args.next() {
                Some(v) => lock_order = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--update" => update = true,
            _ => return usage(),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| Workspace::discover_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("mcn-analyze: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join("crates/analyze/analyze-baseline.json"));
    let lock_order = lock_order.unwrap_or_else(|| root.join("crates/analyze/lock-order.json"));

    let outcome = match mcn_analyze::check(&root, &baseline, &lock_order, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mcn-analyze: {e}");
            return ExitCode::from(1);
        }
    };

    if update {
        println!(
            "mcn-analyze: baseline rewritten with {} finding(s), lock-order \
             rewritten with {} edge(s), over {} file(s)",
            outcome.findings.len(),
            outcome.lock_edges.len(),
            outcome.files
        );
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", json_report(&outcome));
        return if outcome.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    for f in &outcome.diff.new {
        println!("{f}");
    }
    for e in &outcome.diff.stale {
        println!(
            "{}: stale baseline entry for {} (`{}`) no longer fires — remove it \
             or rerun with --update",
            e.file, e.rule, e.excerpt
        );
    }
    for e in &outcome.lock_new {
        println!(
            "{}:{}: lock-order edge `{}` -> `{}` is not in lock-order.json — \
             review the ordering and rerun with --update",
            e.file, e.line, e.from, e.to
        );
    }
    for e in &outcome.lock_stale {
        println!(
            "lock-order.json edge `{}` -> `{}` no longer occurs — rerun with --update",
            e.from, e.to
        );
    }
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &outcome.findings {
        *per_rule.entry(f.rule.as_str()).or_default() += 1;
    }
    let summary: Vec<String> = per_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    println!(
        "mcn-analyze: {} file(s), {} finding(s){}, {} lock edge(s) — {} new, {} \
         stale, {} new lock edge(s), {} stale lock edge(s)",
        outcome.files,
        outcome.findings.len(),
        if summary.is_empty() {
            String::new()
        } else {
            format!(" [{}]", summary.join(", "))
        },
        outcome.lock_edges.len(),
        outcome.diff.new.len(),
        outcome.diff.stale.len(),
        outcome.lock_new.len(),
        outcome.lock_stale.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
