//! Ablation benchmark: how much the algorithmic ingredients matter.
//!
//! Three comparisons on the default (scaled) workload:
//!
//! * the straightforward **baseline** (d complete expansions + BNL) versus
//!   **LSA** versus **CEA** for skyline queries — the paper's motivation for
//!   local search in the first place;
//! * **batch top-k** versus draining the **incremental** iterator to the same
//!   `k` — the price of incrementality;
//! * skyline via LSA at **zero buffer** versus a **2 % buffer** — how much of
//!   LSA's multiple-read penalty the buffer absorbs (the effect CEA achieves
//!   without any buffer at all).

use criterion::{criterion_group, criterion_main, Criterion};
use mcn_bench::measure::bench_fixture;
use mcn_core::prelude::*;
use mcn_gen::{CostDistribution, WorkloadSpec};
use mcn_storage::BufferConfig;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        nodes: 2500,
        facilities: 1500,
        cost_types: 4,
        distribution: CostDistribution::AntiCorrelated,
        clusters: 10,
        queries: 4,
        seed: 77,
    }
}

fn bench(c: &mut Criterion) {
    let (store, queries, d) = bench_fixture(&spec(), 0.01);
    let q = queries[0];

    let mut group = c.benchmark_group("ablation_skyline_algorithms");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("baseline", |b| {
        b.iter(|| {
            store.buffer().clear();
            baseline_skyline(&store, q).facilities.len()
        })
    });
    group.bench_function("LSA", |b| {
        b.iter(|| {
            store.buffer().clear();
            skyline_query(&store, q, Algorithm::Lsa).facilities.len()
        })
    });
    group.bench_function("CEA", |b| {
        b.iter(|| {
            store.buffer().clear();
            skyline_query(&store, q, Algorithm::Cea).facilities.len()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_topk_incrementality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("batch_k8", |b| {
        b.iter(|| {
            store.buffer().clear();
            topk_query(&store, q, WeightedSum::uniform(d), 8, Algorithm::Cea)
                .entries
                .len()
        })
    });
    group.bench_function("incremental_k8", |b| {
        b.iter(|| {
            store.buffer().clear();
            TopKIter::cea(store.clone(), q, WeightedSum::uniform(d))
                .take(8)
                .count()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_lsa_buffer");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, fraction) in [("no_buffer", 0.0), ("buffer_2pct", 0.02)] {
        group.bench_function(label, |b| {
            store.set_buffer(BufferConfig::Fraction(fraction));
            b.iter(|| {
                store.buffer().clear();
                skyline_query(&store, q, Algorithm::Lsa).facilities.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
