//! Plain-text rendering of experiment tables.

use crate::measure::PointMeasurement;
use serde::{Deserialize, Serialize};

/// One rendered row of an experiment table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// The x-axis label of the data point.
    pub label: String,
    /// LSA charged seconds.
    pub lsa_time: f64,
    /// CEA charged seconds.
    pub cea_time: f64,
    /// LSA physical page reads.
    pub lsa_reads: f64,
    /// CEA physical page reads.
    pub cea_reads: f64,
    /// LSA/CEA speedup on charged time.
    pub speedup: f64,
    /// Mean result cardinality.
    pub result_size: f64,
}

/// A complete experiment table: one row per x-axis value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. `"fig08a"`).
    pub id: String,
    /// Human-readable title (e.g. `"Fig. 8(a) — skyline, effect of |P|"`).
    pub title: String,
    /// The parameter that varies along the rows.
    pub x_axis: String,
    /// The rows.
    pub rows: Vec<Row>,
    /// Latency (seconds per physical read) used to compute charged time.
    pub latency: f64,
}

impl ExperimentTable {
    /// Builds a table from raw measurements.
    pub fn from_points(
        id: impl Into<String>,
        title: impl Into<String>,
        x_axis: impl Into<String>,
        points: &[PointMeasurement],
        latency: f64,
    ) -> Self {
        let rows = points
            .iter()
            .map(|p| Row {
                label: p.label.clone(),
                lsa_time: p.lsa.charged_seconds(latency),
                cea_time: p.cea.charged_seconds(latency),
                lsa_reads: p.lsa.physical_reads,
                cea_reads: p.cea.physical_reads,
                speedup: p.speedup(latency),
                result_size: p.lsa.result_size,
            })
            .collect();
        Self {
            id: id.into(),
            title: title.into(),
            x_axis: x_axis.into(),
            rows,
            latency,
        }
    }
}

/// Renders a table in a fixed-width text layout suitable for EXPERIMENTS.md.
pub fn render_table(table: &ExperimentTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} [{}]\n", table.title, table.id));
    out.push_str(&format!(
        "(charged time = CPU + physical reads x {:.0} ms)\n",
        table.latency * 1000.0
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}\n",
        table.x_axis, "LSA time(s)", "CEA time(s)", "LSA reads", "CEA reads", "speedup", "|result|"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<18} {:>12.4} {:>12.4} {:>10.1} {:>10.1} {:>8.2}x {:>9.1}\n",
            r.label, r.lsa_time, r.cea_time, r.lsa_reads, r.cea_reads, r.speedup, r.result_size
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::AlgoMeasurement;

    fn point(label: &str, lsa_reads: f64, cea_reads: f64) -> PointMeasurement {
        PointMeasurement {
            label: label.to_string(),
            lsa: AlgoMeasurement {
                cpu_seconds: 0.001,
                physical_reads: lsa_reads,
                result_size: 7.0,
                ..Default::default()
            },
            cea: AlgoMeasurement {
                cpu_seconds: 0.001,
                physical_reads: cea_reads,
                result_size: 7.0,
                ..Default::default()
            },
            queries: 10,
        }
    }

    #[test]
    fn table_rows_follow_points() {
        let points = vec![
            point("|P| = 500", 300.0, 100.0),
            point("|P| = 1000", 200.0, 80.0),
        ];
        let table = ExperimentTable::from_points("fig08a", "Fig. 8(a)", "|P|", &points, 0.005);
        assert_eq!(table.rows.len(), 2);
        assert!(table.rows[0].speedup > 2.5 && table.rows[0].speedup < 3.5);
        let text = render_table(&table);
        assert!(text.contains("Fig. 8(a)"));
        assert!(text.contains("|P| = 500"));
        assert!(text.contains('x'));
    }
}
