//! Error types for building and opening MCN stores.

use mcn_graph::NodeId;
use std::fmt;

/// Errors produced while building or opening a disk-resident MCN store.
#[derive(Clone, Debug, PartialEq)]
pub enum StorageError {
    /// A node's adjacency record does not fit in a single page.
    RecordTooLarge {
        /// The offending node.
        node: NodeId,
        /// The record size that was required.
        required: usize,
        /// The maximum record size (one page).
        maximum: usize,
    },
    /// The header page is missing or malformed.
    InvalidHeader(String),
    /// The header image is shorter than the fixed header layout.
    TruncatedHeader {
        /// Bytes the header layout requires.
        required: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// The graph is too large for the 32-bit identifier space of the layout.
    TooManyPages,
    /// A partitioned store's inputs are inconsistent (map/disks/manifest
    /// mismatch).
    Partition(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge {
                node,
                required,
                maximum,
            } => write!(
                f,
                "adjacency record of node {node} needs {required} bytes but a page holds {maximum}"
            ),
            StorageError::InvalidHeader(msg) => write!(f, "invalid store header: {msg}"),
            StorageError::TruncatedHeader { required, actual } => write!(
                f,
                "truncated store header: {actual} bytes but the layout needs {required}"
            ),
            StorageError::TooManyPages => write!(f, "store exceeds the 32-bit page id space"),
            StorageError::Partition(msg) => write!(f, "inconsistent partitioned store: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = StorageError::RecordTooLarge {
            node: NodeId::new(3),
            required: 9000,
            maximum: 4096,
        };
        let msg = e.to_string();
        assert!(msg.contains("v3") && msg.contains("9000") && msg.contains("4096"));
        assert!(StorageError::InvalidHeader("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let truncated = StorageError::TruncatedHeader {
            required: 60,
            actual: 12,
        };
        assert!(truncated.to_string().contains("60") && truncated.to_string().contains("12"));
    }
}
