//! The checked-in findings baseline, mirroring the bench gates
//! (`logical_reads.json` / `labels.json`): accepted findings live in
//! `analyze-baseline.json`, new findings fail the check, and entries that
//! no longer fire fail it too — the baseline must stay *minimal* so it
//! documents exactly the accepted debt, nothing more.

use serde::{Deserialize, Serialize};

use crate::Finding;

/// One accepted finding. Line numbers are stored for human readers but
/// matching ignores them — pure reformatting must not churn the baseline —
/// and keys on `(file, rule, excerpt)` as a multiset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Line at the time the baseline was written (informational).
    pub line: u32,
    /// Trimmed source line the finding pointed at.
    pub excerpt: String,
}

/// The baseline file contents.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Accepted findings, sorted by (file, line, rule).
    pub entries: Vec<BaselineEntry>,
}

/// The result of diffing current findings against the baseline.
#[derive(Clone, Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline — these fail the check.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer fire — stale, must be removed.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Builds a baseline that accepts exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        Baseline {
            entries: findings
                .iter()
                .map(|f| BaselineEntry {
                    file: f.file.clone(),
                    rule: f.rule.clone(),
                    line: f.line,
                    excerpt: f.excerpt.clone(),
                })
                .collect(),
        }
    }

    /// Serializes in the same pretty-JSON style as the bench baselines.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a baseline file.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        serde::json::from_str(text).map_err(|e| e.to_string())
    }

    /// Diffs `findings` against this baseline. Matching is a multiset over
    /// `(file, rule, excerpt)`: every finding must consume one baseline
    /// entry and every entry must be consumed.
    pub fn diff(&self, findings: &[Finding]) -> Diff {
        let mut unconsumed: Vec<&BaselineEntry> = self.entries.iter().collect();
        let mut diff = Diff::default();
        for f in findings {
            let slot = unconsumed
                .iter()
                .position(|e| e.file == f.file && e.rule == f.rule && e.excerpt == f.excerpt);
            match slot {
                Some(i) => {
                    unconsumed.swap_remove(i);
                }
                None => diff.new.push(f.clone()),
            }
        }
        diff.stale = unconsumed.into_iter().cloned().collect();
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str, line: u32, excerpt: &str) -> Finding {
        Finding {
            file: file.to_string(),
            rule: rule.to_string(),
            line,
            excerpt: excerpt.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::from_findings(&[finding("a.rs", "float-eq", 3, "x == 0.0")]);
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn clean_diff_when_findings_match() {
        let f = [finding("a.rs", "float-eq", 3, "x == 0.0")];
        let b = Baseline::from_findings(&f);
        // Line drift does not churn the baseline.
        let moved = [finding("a.rs", "float-eq", 9, "x == 0.0")];
        let d = b.diff(&moved);
        assert!(d.new.is_empty() && d.stale.is_empty());
    }

    #[test]
    fn new_and_stale_are_reported() {
        let b = Baseline::from_findings(&[finding("a.rs", "float-eq", 3, "x == 0.0")]);
        let d = b.diff(&[finding("b.rs", "raw-spawn", 1, "thread::spawn(…)")]);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.new[0].file, "b.rs");
        assert_eq!(d.stale[0].file, "a.rs");
    }

    #[test]
    fn multiset_matching_counts_duplicates() {
        let one = finding("a.rs", "float-eq", 3, "x == 0.0");
        let b = Baseline::from_findings(&[one.clone()]);
        // Two identical findings, one baseline entry: one is new.
        let d = b.diff(&[one.clone(), one]);
        assert_eq!(d.new.len(), 1);
        assert!(d.stale.is_empty());
    }
}
