//! The explicit, resolved call graph: every call site in every function
//! body, mapped through [`crate::resolver::Resolver`] to candidate callees.
//!
//! Closure queries (forward reachability for the hot-path lint and lock
//! closures, reverse reachability for determinism sinks) run over candidate
//! edges: a call with several candidates (trait fan-out, name fallback)
//! reaches all of them — the analyses over-approximate rather than miss.
//!
//! Closure bodies are attributed to their *enclosing function* — a closure
//! passed to `with_page` textually belongs to the caller, which is exactly
//! the attribution lock-liveness analysis needs. Nested `fn` items are
//! carved out and get their own node.

use crate::resolver::Resolver;
use crate::workspace::Workspace;

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written at the site.
    pub name: String,
    /// Token index of the callee identifier (in the owning file).
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Resolved candidate callees (indices into `resolver.fns`); empty for
    /// external/std calls.
    pub candidates: Vec<usize>,
}

/// The workspace call graph: per-function call sites.
pub struct CallGraph {
    /// `sites[f]` lists the call sites of `resolver.fns[f]`, in token order.
    pub sites: Vec<Vec<CallSite>>,
}

/// Keywords that look like call heads (`if (…)`, `while (…)`) but aren't.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "fn", "loop", "in", "move", "let",
];

impl CallGraph {
    /// Scans every function body and resolves its call sites.
    pub fn build(ws: &Workspace, r: &Resolver) -> CallGraph {
        let mut sites = Vec::with_capacity(r.fns.len());
        for (fn_id, f) in r.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            let span = &file.fns[f.span];
            let toks = &file.tokens;
            let mut out = Vec::new();
            for k in span.body_start..span.end.min(toks.len()) {
                // Skip tokens owned by a nested `fn` item.
                if file.enclosing_fn(k).map(|g| g.start) != Some(span.start) {
                    continue;
                }
                let Some(name) = toks[k].ident() else {
                    continue;
                };
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                // A nested `fn name(…)` header: the name token sits before
                // the nested body, so it still belongs to the enclosing fn
                // — but it's a declaration, not a call.
                if k > 0 && toks[k - 1].is_ident("fn") {
                    continue;
                }
                // A call head is `name (` or `name ::< … > (`.
                let is_call = match toks.get(k + 1) {
                    Some(t) if t.is_op("(") => true,
                    Some(t) if t.is_op("::<") => {
                        let mut angle = 0i32;
                        let mut m = k + 1;
                        loop {
                            match toks.get(m) {
                                Some(t) if t.is_op("<") || t.is_op("::<") => angle += 1,
                                Some(t) if t.is_op(">") => {
                                    angle -= 1;
                                    if angle == 0 {
                                        break;
                                    }
                                }
                                Some(_) => {}
                                None => break,
                            }
                            m += 1;
                        }
                        toks.get(m + 1).is_some_and(|t| t.is_op("("))
                    }
                    _ => false,
                };
                if !is_call {
                    continue;
                }
                let candidates = r.resolve_call(ws, fn_id, k, 0);
                out.push(CallSite {
                    name: name.to_string(),
                    tok: k,
                    line: toks[k].line,
                    candidates,
                });
            }
            sites.push(out);
        }
        CallGraph { sites }
    }

    /// Forward closure: every function reachable from `roots` through
    /// candidate edges (roots included).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.sites.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(f) = stack.pop() {
            for site in &self.sites[f] {
                for &c in &site.candidates {
                    if !seen[c] {
                        seen[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }

    /// Reverse closure: every function that can reach one of `sinks`
    /// through candidate edges (sinks included).
    pub fn reaches(&self, sinks: &[usize]) -> Vec<bool> {
        let mut sensitive = vec![false; self.sites.len()];
        for &s in sinks {
            sensitive[s] = true;
        }
        loop {
            let mut grew = false;
            for f in 0..self.sites.len() {
                if sensitive[f] {
                    continue;
                }
                let hits = self.sites[f]
                    .iter()
                    .any(|site| site.candidates.iter().any(|&c| sensitive[c]));
                if hits {
                    sensitive[f] = true;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        sensitive
    }
}

/// The resolved workspace model rules run against: resolver plus call graph.
pub struct Model<'ws> {
    /// The analyzed workspace.
    pub ws: &'ws Workspace,
    /// Symbol tables and receiver typing.
    pub resolver: Resolver,
    /// Resolved call sites per function.
    pub graph: CallGraph,
}

impl<'ws> Model<'ws> {
    /// Builds resolver and call graph for `ws`.
    pub fn build(ws: &'ws Workspace) -> Model<'ws> {
        let resolver = Resolver::build(ws);
        let graph = CallGraph::build(ws, &resolver);
        Model {
            ws,
            resolver,
            graph,
        }
    }

    /// True when token `k` of `fns[fn_id]`'s file belongs to that function
    /// directly (not to a nested `fn` item).
    pub fn owns_token(&self, fn_id: usize, k: usize) -> bool {
        let f = &self.resolver.fns[fn_id];
        let file = &self.ws.files[f.file];
        let span = &file.fns[f.span];
        span.contains(k) && file.enclosing_fn(k).map(|g| g.start) == Some(span.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn model_of(text: &str) -> (Workspace, Resolver, CallGraph) {
        let ws = Workspace::from_files(vec![SourceFile::from_str("crates/x/src/lib.rs", text)]);
        let r = Resolver::build(&ws);
        let g = CallGraph::build(&ws, &r);
        (ws, r, g)
    }

    #[test]
    fn free_fn_chain_resolves_and_closes() {
        let (_, r, g) = model_of(concat!(
            "fn a() { b(); }\n",
            "fn b() { c(); }\n",
            "fn c() {}\n",
            "fn lonely() {}\n",
        ));
        let idx = |n: &str| r.fns.iter().position(|f| f.name == n).unwrap();
        let reach = g.reachable_from(&[idx("a")]);
        assert!(reach[idx("b")] && reach[idx("c")]);
        assert!(!reach[idx("lonely")]);
        let rev = g.reaches(&[idx("c")]);
        assert!(rev[idx("a")] && rev[idx("b")]);
        assert!(!rev[idx("lonely")]);
    }

    #[test]
    fn turbofish_call_heads_are_sites() {
        let (_, r, g) = model_of(concat!(
            "fn helper() -> u32 { 1 }\n",
            "fn a() { helper::<u32>(); }\n",
        ));
        let a = r.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(g.sites[a].iter().any(|s| s.name == "helper"));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let (_, r, g) = model_of(concat!(
            "fn target() {}\n",
            "fn outer() {\n",
            "    fn inner() { target(); }\n",
            "    inner();\n",
            "}\n",
        ));
        let idx = |n: &str| r.fns.iter().position(|f| f.name == n).unwrap();
        let outer_calls: Vec<&str> = g.sites[idx("outer")]
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(outer_calls, vec!["inner"]);
        let inner_calls: Vec<&str> = g.sites[idx("inner")]
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(inner_calls, vec!["target"]);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let (_, r, g) = model_of("fn a() { println!(\"x\"); format!(\"y\"); }\n");
        let a = r.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(g.sites[a].is_empty());
    }
}
