//! Network locations: points that are either a node or lie inside an edge.
//!
//! Query locations `q` and facilities both fall "on the MCN" (paper
//! Section III). This module models such positions and computes the
//! *access points* of a location: the set of nodes reachable from it
//! directly (with their partial cost vectors), as well as facilities on the
//! same edge that can be reached without passing through any node.

use crate::cost::CostVec;
use crate::graph::MultiCostGraph;
use crate::ids::{EdgeId, FacilityId, NodeId};
use serde::{Deserialize, Serialize};

/// A location on the network: either exactly at a node or at a fractional
/// position along an edge.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NetworkLocation {
    /// The location coincides with a network node.
    Node(NodeId),
    /// The location lies on an edge at fraction `position ∈ [0, 1]` of the way
    /// from the edge's source to its target.
    OnEdge {
        /// The edge containing the location.
        edge: EdgeId,
        /// Fraction of the way from the edge's source node to its target node.
        position: f64,
    },
}

impl NetworkLocation {
    /// Convenience constructor for a location at a node.
    #[inline]
    pub fn at_node(node: NodeId) -> Self {
        NetworkLocation::Node(node)
    }

    /// Convenience constructor for a location along an edge.
    ///
    /// # Panics
    /// Panics if `position` is outside `[0, 1]`.
    #[inline]
    pub fn on_edge(edge: EdgeId, position: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&position),
            "edge position must lie within [0, 1], got {position}"
        );
        NetworkLocation::OnEdge { edge, position }
    }

    /// Returns the node if this location is exactly at one.
    #[inline]
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            NetworkLocation::Node(n) => Some(*n),
            NetworkLocation::OnEdge { .. } => None,
        }
    }
}

/// How a [`NetworkLocation`] connects to the rest of the network.
///
/// Produced by [`MultiCostGraph::location_access`]; used by the expansion
/// algorithms to seed their search heaps.
#[derive(Clone, Debug, PartialEq)]
pub struct LocationAccess {
    /// Nodes directly reachable from the location, with the partial cost of
    /// getting there.
    pub node_costs: Vec<(NodeId, CostVec)>,
    /// Facilities on the same edge reachable without traversing any node, with
    /// the partial cost of getting there.
    pub direct_facilities: Vec<(FacilityId, CostVec)>,
}

impl MultiCostGraph {
    /// Computes the [`LocationAccess`] of a location: the entry points into the
    /// node graph and any facilities on the same edge reachable directly.
    ///
    /// For a location at a node, the single access point is that node at zero
    /// cost. For a location at fraction `t` along edge `e = ⟨u, v⟩`:
    ///
    /// * node `u` is reachable at cost `t · w(e)` and node `v` at
    ///   `(1 − t) · w(e)` (only `v` for a directed edge);
    /// * every facility at fraction `s` on the same edge is reachable directly
    ///   at cost `|s − t| · w(e)` (only `s ≥ t` for a directed edge).
    ///
    /// # Panics
    /// Panics if the location refers to an edge not present in the graph.
    pub fn location_access(&self, location: NetworkLocation) -> LocationAccess {
        match location {
            NetworkLocation::Node(n) => {
                assert!(
                    n.index() < self.num_nodes(),
                    "location references unknown node {n}"
                );
                LocationAccess {
                    node_costs: vec![(n, CostVec::zeros(self.num_cost_types()))],
                    direct_facilities: Vec::new(),
                }
            }
            NetworkLocation::OnEdge { edge, position } => {
                let e = self.edge(edge);
                let mut node_costs = Vec::with_capacity(2);
                // Moving "backwards" towards the source is only allowed on
                // undirected edges.
                if !e.directed {
                    node_costs.push((e.source, e.costs.scale(position)));
                }
                node_costs.push((e.target, e.costs.scale(1.0 - position)));

                let mut direct_facilities = Vec::new();
                for &fid in self.facilities_on_edge(edge) {
                    let fac = self.facility(fid);
                    let reachable = if e.directed {
                        fac.position >= position
                    } else {
                        true
                    };
                    if reachable {
                        let span = (fac.position - position).abs();
                        direct_facilities.push((fid, e.costs.scale(span)));
                    }
                }
                LocationAccess {
                    node_costs,
                    direct_facilities,
                }
            }
        }
    }

    /// Returns the [`NetworkLocation`] of a facility.
    pub fn facility_location(&self, facility: FacilityId) -> NetworkLocation {
        let f = self.facility(facility);
        NetworkLocation::OnEdge {
            edge: f.edge,
            position: f.position,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph() -> MultiCostGraph {
        // v0 --(10, 2)-- v1 --(4, 8)-- v2, facility p0 at 0.5 of edge 0,
        // facility p1 at 0.25 of edge 1.
        let mut b = GraphBuilder::new(2);
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(2.0, 0.0);
        let e0 = b
            .add_edge(v0, v1, CostVec::from_slice(&[10.0, 2.0]))
            .unwrap();
        let e1 = b
            .add_edge(v1, v2, CostVec::from_slice(&[4.0, 8.0]))
            .unwrap();
        b.add_facility(e0, 0.5).unwrap();
        b.add_facility(e1, 0.25).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn node_location_access_is_trivial() {
        let g = line_graph();
        let acc = g.location_access(NetworkLocation::at_node(NodeId::new(1)));
        assert_eq!(acc.node_costs.len(), 1);
        assert_eq!(acc.node_costs[0].0, NodeId::new(1));
        assert_eq!(acc.node_costs[0].1.as_slice(), &[0.0, 0.0]);
        assert!(acc.direct_facilities.is_empty());
    }

    #[test]
    fn edge_location_reaches_both_end_nodes_and_facilities() {
        let g = line_graph();
        // Query at 0.25 along edge 0 (costs (10, 2)).
        let acc = g.location_access(NetworkLocation::on_edge(EdgeId::new(0), 0.25));
        assert_eq!(acc.node_costs.len(), 2);
        let (n0, c0) = &acc.node_costs[0];
        let (n1, c1) = &acc.node_costs[1];
        assert_eq!(*n0, NodeId::new(0));
        assert_eq!(c0.as_slice(), &[2.5, 0.5]);
        assert_eq!(*n1, NodeId::new(1));
        assert_eq!(c1.as_slice(), &[7.5, 1.5]);
        // Facility p0 is at 0.5 of the same edge: span 0.25.
        assert_eq!(acc.direct_facilities.len(), 1);
        assert_eq!(acc.direct_facilities[0].0, FacilityId::new(0));
        assert_eq!(acc.direct_facilities[0].1.as_slice(), &[2.5, 0.5]);
    }

    #[test]
    fn directed_edge_restricts_access() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let e = b
            .add_directed_edge(v0, v1, CostVec::from_slice(&[10.0]))
            .unwrap();
        b.add_facility(e, 0.2).unwrap(); // behind the query point
        b.add_facility(e, 0.8).unwrap(); // ahead of the query point
        let g = b.build().unwrap();
        let acc = g.location_access(NetworkLocation::on_edge(e, 0.5));
        // Only the forward end-node is reachable.
        assert_eq!(acc.node_costs.len(), 1);
        assert_eq!(acc.node_costs[0].0, v1);
        assert_eq!(acc.node_costs[0].1.as_slice(), &[5.0]);
        // Only the facility ahead is reachable directly.
        assert_eq!(acc.direct_facilities.len(), 1);
        assert_eq!(acc.direct_facilities[0].0, FacilityId::new(1));
        assert!((acc.direct_facilities[0].1[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn facility_location_roundtrip() {
        let g = line_graph();
        let loc = g.facility_location(FacilityId::new(1));
        assert_eq!(
            loc,
            NetworkLocation::OnEdge {
                edge: EdgeId::new(1),
                position: 0.25
            }
        );
    }

    #[test]
    #[should_panic]
    fn on_edge_position_out_of_range_panics() {
        let _ = NetworkLocation::on_edge(EdgeId::new(0), -0.1);
    }
}
