//! Shared scaffolding for building deterministic mixed query batches.
//!
//! The multi-query experiments (`throughput`, `partition`) all drive the
//! engine with the same shape of batch: the workload's query locations
//! cycled up to the batch size, seeded random weighted-sum coefficients,
//! and LSA/CEA alternation — only the request-kind mix differs. This
//! helper owns the scaffolding so the experiments cannot drift apart.

use mcn_core::Algorithm;
use mcn_engine::QueryRequest;
use mcn_graph::NetworkLocation;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a deterministic mixed batch: `queries` cycled `batch` times, one
/// fresh weight vector of arity `d` per request, CEA/LSA alternating by
/// index, and the request kind chosen by `kind(index, location, weights,
/// algorithm)`. Deterministic in `seed`.
pub fn mixed_request_batch(
    queries: &[NetworkLocation],
    d: usize,
    batch: usize,
    seed: u64,
    kind: impl Fn(usize, NetworkLocation, Vec<f64>, Algorithm) -> QueryRequest,
) -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    queries
        .iter()
        .cycle()
        .take(batch)
        .enumerate()
        .map(|(i, &location)| {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..1.0)).collect();
            let algorithm = if i % 2 == 0 {
                Algorithm::Cea
            } else {
                Algorithm::Lsa
            };
            kind(i, location, weights, algorithm)
        })
        .collect()
}
