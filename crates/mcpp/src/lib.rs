//! # mcn-mcpp
//!
//! **Multi-criteria Pareto path computation** (MCPP): given a source and a
//! destination node in a multi-cost network, compute the *skyline of paths*
//! between them — every path whose cost vector is not dominated by the cost
//! vector of another path.
//!
//! This is the operations-research problem the paper contrasts with its MCN
//! skyline (Section II-D): MCPP produces a skyline of *paths* to a single,
//! given destination, whereas the MCN skyline is a skyline of *facilities*
//! reached via each cost type's own shortest path. The crate exists
//!
//! * as the classic related-work baseline (label-correcting algorithm in the
//!   style of Skriver & Andersen / Brumbaugh-Smith & Shier);
//! * to cross-validate the per-cost shortest path distances used elsewhere:
//!   the component-wise minimum over the Pareto path set equals the vector of
//!   single-criterion shortest-path distances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod label;

pub use label::{componentwise_minimum, pareto_paths, ParetoLabel};

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder, NodeId};

    #[test]
    fn crate_level_smoke_test() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 5.0])).unwrap();
        b.add_edge(a, c, CostVec::from_slice(&[5.0, 1.0])).unwrap();
        let g = b.build().unwrap();
        let paths = pareto_paths(&g, a, NodeId::new(1));
        assert_eq!(paths.len(), 2);
    }
}
