//! # mcn-storage
//!
//! The **disk-resident storage scheme** the paper's algorithms run on
//! (its Figure 2, adapted from Yiu & Mamoulis, SIGMOD'04):
//!
//! * an **adjacency tree** (a bulk-loaded B+-tree) mapping each node to the
//!   position of its record in the flat **adjacency file**;
//! * the adjacency file itself, storing per node the incident edges, their
//!   `d`-dimensional cost vectors and pointers into the facility file;
//! * the **facility file**, storing per edge the facilities lying on it
//!   (identifier + fractional position, from which partial weights are
//!   derived);
//! * a **facility tree** mapping each facility to its containing edge — used
//!   by LSA/CEA when the shrinking stage needs the edges of the remaining
//!   candidates;
//! * an **edge index** (added in this reproduction) mapping each edge to its
//!   end-nodes, used to seed queries located in the interior of an edge.
//!
//! Everything is read through a fixed-capacity **LRU buffer pool**
//! ([`BufferPool`]) over a [`DiskManager`]; both in-memory (instrumented) and
//! file-backed disks are provided. Physical/logical reads and buffer
//! hits/misses are counted precisely ([`IoStats`]), because the paper's
//! evaluation is I/O-bound and the LSA-vs-CEA comparison is fundamentally
//! about how often the same page is fetched.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod buffer;
pub mod builder;
pub mod codec;
pub mod disk;
pub mod error;
pub mod meta;
pub mod page;
pub mod partitioned;
pub mod records;
pub mod stats;
pub mod store;
pub mod view;

pub use btree::StaticBTree;
pub use buffer::BufferPool;
pub use builder::{build_region_store, build_store};
pub use disk::{DiskManager, FileDisk, InMemoryDisk};
pub use error::StorageError;
pub use meta::StorageMeta;
pub use page::{Page, PageId, PAGE_SIZE};
pub use partitioned::{
    current_seed_region, with_seed_region, PartitionManifest, PartitionedStore, RegionTraffic,
};
pub use records::{AdjacencyEntry, AdjacencyList, FacilityRun, RecordPtr};
pub use stats::IoStats;
pub use store::{BufferConfig, EdgeEndpoints, FacilityInfo, MCNStore};
pub use view::StoreView;

/// Compile-time thread-safety proof: instantiated in a `const _` next to
/// each shared type, so the build fails the moment a field change makes the
/// type lose `Send`/`Sync` (the `missing-send-sync-assert` lint requires
/// one such assertion per concurrency-facing type, outside `cfg(test)`).
pub(crate) const fn assert_send_sync<T: Send + Sync>() {}
