//! Offline no-op `Serialize`/`Deserialize` derives.
//!
//! The workspace uses the serde derives purely as annotations today (no
//! serializer is wired up in-tree and no code takes `T: Serialize` bounds),
//! so the offline shim expands to nothing. If a future PR adds a real
//! serialization backend, replace this vendored pair with the real serde.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
