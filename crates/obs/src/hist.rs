//! Deterministic log2-bucket latency histogram.
//!
//! Values (nanoseconds, but any `u64` works) land in fixed power-of-two
//! buckets: bucket 0 holds the value 0, bucket `i` (1 ≤ i ≤ 64) holds
//! `[2^(i-1), 2^i)`. Fixed buckets mean two runs that record the same
//! multiset of values produce byte-identical snapshots — percentiles are
//! a deterministic function of the bucket counts, reported as the upper
//! bound of the bucket containing the requested rank (clamped to the
//! observed max).
//!
//! The recording path is wait-free: one relaxed `fetch_add` on the bucket
//! plus count/sum/min/max atomics — no locks, safe to share across worker
//! threads via `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of buckets: the zero bucket plus one per bit position.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the value reported for percentiles
/// that land in it).
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Concurrent histogram. All methods take `&self`; share via `Arc`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation. Wait-free.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (u128 saturated to u64 — a span
    /// longer than ~584 years is pinned rather than wrapped).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold a snapshot's counts into this histogram (used to merge a
    /// batch-local histogram into a long-lived registry one).
    pub fn merge(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
        for &(idx, n) in &snap.buckets {
            self.buckets[idx as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Consistent snapshot for a quiesced histogram. If recorders are
    /// still running the counts are each individually valid but may be
    /// mutually torn (`count` vs bucket sum); snapshot after the workload
    /// quiesces when exact reconciliation matters.
    pub fn snapshot(
        &self,
        name: impl Into<String>,
        labels: Vec<(String, String)>,
    ) -> HistogramSnapshot {
        let count = self.count.load(Ordering::SeqCst);
        let sum = self.sum.load(Ordering::SeqCst);
        let min = self.min.load(Ordering::SeqCst);
        let max = self.max.load(Ordering::SeqCst);
        let mut buckets = Vec::new();
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::SeqCst);
            if n > 0 {
                buckets.push((idx as u32, n));
            }
        }
        let mut snap = HistogramSnapshot {
            name: name.into(),
            labels,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            buckets,
            p50: 0,
            p95: 0,
            p99: 0,
        };
        snap.p50 = snap.percentile(0.50);
        snap.p95 = snap.percentile(0.95);
        snap.p99 = snap.percentile(0.99);
        snap
    }
}

/// Serializable point-in-time view of a [`Histogram`]. `buckets` is
/// sparse `(bucket_index, count)` sorted by index; `p50`/`p95`/`p99` are
/// precomputed from the buckets at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` (0 < q ≤ 1): the upper bound of the bucket
    /// containing rank `ceil(q · count)`, clamped to the observed max.
    ///
    /// Guards: an empty histogram (or a non-positive/NaN `q`) returns 0
    /// rather than dividing by or indexing into nothing.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 || !(q > 0.0) {
            return 0;
        }
        let q = q.min(1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx as usize).min(self.max);
            }
        }
        // Torn concurrent snapshot (bucket sum < count): fall back to max.
        self.max
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)));
        }
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new();
        let s = h.snapshot("t", vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn percentile_is_bucket_upper_clamped_to_max() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.snapshot("t", vec![]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        // rank(0.5, 5) = 3 → value 30 lives in bucket 5 ([16, 32)) → upper 31.
        assert_eq!(s.p50, 31);
        // rank(0.95, 5) = 5 → bucket 10 upper is 1023, clamped to max 1000.
        assert_eq!(s.p95, 1000);
        assert_eq!(s.p99, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn degenerate_quantiles_guarded() {
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot("t", vec![]);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(-1.0), 0);
        assert_eq!(s.percentile(f64::NAN), 0);
        assert_eq!(s.percentile(2.0), s.percentile(1.0));
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        b.record(50);
        b.merge(&a.snapshot("a", vec![]));
        let s = b.snapshot("b", vec![]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1 + 100 + 10_000 + 50);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        // Merging an empty snapshot is a no-op (and must not clobber min).
        b.merge(&Histogram::new().snapshot("e", vec![]));
        assert_eq!(b.snapshot("b", vec![]), s);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v * v);
        }
        let s = h.snapshot("lat", vec![("tier".into(), "skyline".into())]);
        let text = serde::json::to_string_pretty(&s);
        let back: HistogramSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde::json::to_string_pretty(&back), text);
    }
}
