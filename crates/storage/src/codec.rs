//! Little-endian encoding helpers for fixed-layout records inside pages.

/// A cursor that appends fixed-width values to a byte buffer (typically a
/// region of a page).
pub struct RecordWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> RecordWriter<'a> {
    /// Creates a writer over `buf` starting at offset 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes written so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn put(&mut self, bytes: &[u8]) {
        let end = self.pos + bytes.len();
        assert!(end <= self.buf.len(), "record overflows the page");
        self.buf[self.pos..end].copy_from_slice(bytes);
        self.pos = end;
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.put(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.put(&v.to_le_bytes());
    }
}

/// A cursor that reads fixed-width values from a byte buffer.
pub struct RecordReader<'a> {
    buf: &'a [u8],
}

impl<'a> RecordReader<'a> {
    /// Creates a reader over `buf` starting at `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is beyond the end of the buffer.
    pub fn new(buf: &'a [u8], offset: usize) -> Self {
        assert!(offset <= buf.len(), "record offset out of range");
        Self {
            buf: &buf[offset..],
        }
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the next `N` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `N` bytes remain.
    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.buf.len(), "record read past end of buffer");
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        head.try_into().unwrap()
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = vec![0u8; 64];
        {
            let mut w = RecordWriter::new(&mut buf);
            w.put_u8(7);
            w.put_u16(65535);
            w.put_u32(123_456_789);
            w.put_u64(u64::MAX - 1);
            w.put_f64(3.5);
            assert_eq!(w.position(), 1 + 2 + 4 + 8 + 8);
            assert_eq!(w.remaining(), 64 - 23);
        }
        let mut r = RecordReader::new(&buf, 0);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 65535);
        assert_eq!(r.get_u32(), 123_456_789);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f64(), 3.5);
    }

    #[test]
    fn reader_with_offset() {
        let mut buf = vec![0u8; 16];
        {
            let mut w = RecordWriter::new(&mut buf[4..]);
            w.put_u32(42);
        }
        let mut r = RecordReader::new(&buf, 4);
        assert_eq!(r.get_u32(), 42);
        assert_eq!(r.remaining(), 8);
    }

    #[test]
    #[should_panic]
    fn writer_overflow_panics() {
        let mut buf = vec![0u8; 3];
        let mut w = RecordWriter::new(&mut buf);
        w.put_u32(1);
    }
}
