//! A hand-rolled Rust lexer, in the same spirit as `vendor/serde_derive`'s
//! token parser: no `syn`/`quote` (the build environment is offline), just
//! enough token structure for line-accurate pattern rules.
//!
//! The lexer understands comments (line, block — nested — and doc), string
//! literals (plain, raw, byte), char literals vs. lifetimes, numeric
//! literals (with float detection), identifiers and punctuation. A small set
//! of compound operators (`::<`, `::`, `==`, `!=`, `->`, `=>`, `<=`, `>=`,
//! `&&`, `||`, `..`, `..=`) is merged into single tokens so rules can match
//! them without reassembling character pairs.
//!
//! Angle brackets stay single-character tokens: merging `<<`/`>>` would
//! corrupt nested generics (`Vec<Vec<u8>>` ends in two independent `>`).
//! The turbofish `::<` *is* merged, which is what lets downstream passes
//! tell expression-position generics (`collect::<Vec<_>>()`) from
//! comparison/shift operators — a bare `<` in expression position is never
//! a generic opener. Raw identifiers (`r#type`) lex as the bare identifier.
//!
//! Line comments are scanned for `mcn-lint:` suppression directives, which
//! are returned alongside the token stream (see [`LexOutput::directives`]).

/// One lexed token with the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token classification.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal; `is_float` marks decimal-point/exponent/`f32`/`f64`
    /// forms.
    Number {
        /// True for float-typed literals.
        is_float: bool,
    },
    /// Any string literal (plain, raw or byte); contents are opaque.
    Str,
    /// A character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation; compound operators are pre-merged (`::`, `==`, …).
    Op(String),
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True iff this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// True iff this token is the operator `s`.
    pub fn is_op(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Op(o) if o == s)
    }

    /// True iff this token is a float literal.
    pub fn is_float(&self) -> bool {
        matches!(self.kind, TokenKind::Number { is_float: true })
    }
}

/// A raw `mcn-lint:` comment found during lexing, before directive parsing.
#[derive(Clone, Debug)]
pub struct RawDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Comment text after `//`, trimmed.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Raw `mcn-lint:` comments, in file order.
    pub directives: Vec<RawDirective>,
}

/// Lexes `text` into tokens plus raw lint directives.
///
/// The lexer is tolerant: malformed input (unterminated strings, stray
/// bytes) is consumed without panicking so the analysis pass can never be
/// crashed by the code it inspects.
pub fn lex(text: &str) -> LexOutput {
    Lexer {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOutput,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.out.tokens.push(Token { line, kind });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line),
                c if c.is_ascii_digit() => self.number(line),
                '"' => {
                    self.bump();
                    self.string_body(line, None);
                }
                '\'' => self.char_or_lifetime(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let trimmed = text.trim_start_matches(['/', '!']).trim().to_string();
        // Only a comment that *is* a directive counts; prose that merely
        // mentions `mcn-lint:` mid-sentence (docs about the linter) is not
        // one, and must not be reported as malformed.
        if trimmed.starts_with("mcn-lint:") {
            self.out.directives.push(RawDirective {
                line,
                text: trimmed,
            });
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// An identifier — or the prefix of a prefixed literal (`r"…"`,
    /// `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`).
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match (word.as_str(), self.peek(0)) {
            ("r" | "br" | "b", Some('"')) => {
                if word == "r" || word == "br" {
                    self.bump();
                    self.string_body(line, Some(0));
                } else {
                    self.bump();
                    self.string_body(line, None);
                }
            }
            ("r" | "br", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                if self.peek(0) == Some('"') {
                    self.bump();
                    self.string_body(line, Some(hashes));
                } else if word == "r"
                    && hashes == 1
                    && matches!(self.peek(0), Some(c) if c.is_alphabetic() || c == '_')
                {
                    // `r#ident` raw identifier: emit the bare identifier so
                    // `r#type`/`r#fn` resolve like any other name.
                    let start = self.pos;
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let raw: String = self.chars[start..self.pos].iter().collect();
                    self.push(line, TokenKind::Ident(raw));
                } else {
                    self.push(line, TokenKind::Ident(word));
                }
            }
            ("b", Some('\'')) => {
                self.char_or_lifetime(line);
            }
            _ => self.push(line, TokenKind::Ident(word)),
        }
    }

    /// Consumes a string body. `raw_hashes` is `Some(n)` for raw strings
    /// terminated by `"` plus `n` hashes (no escapes); `None` for ordinary
    /// strings with backslash escapes.
    fn string_body(&mut self, line: u32, raw_hashes: Option<usize>) {
        match raw_hashes {
            Some(hashes) => loop {
                match self.bump() {
                    Some('"') => {
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(0) == Some('#') {
                            self.bump();
                            seen += 1;
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => break,
                }
            },
            None => loop {
                match self.bump() {
                    Some('\\') => {
                        self.bump();
                    }
                    Some('"') | None => break,
                    Some(_) => {}
                }
            },
        }
        self.push(line, TokenKind::Str);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening quote
        match self.peek(0) {
            Some(c) if (c.is_alphabetic() || c == '_') && self.peek(1) != Some('\'') => {
                // Lifetime: consume the identifier part.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(line, TokenKind::Lifetime);
            }
            Some('\\') => {
                self.bump();
                self.bump(); // escaped char (enough for \n, \', \\; \u{…} below)
                while self.peek(0).is_some() && self.peek(0) != Some('\'') {
                    self.bump();
                }
                self.bump(); // closing quote
                self.push(line, TokenKind::Char);
            }
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(line, TokenKind::Char);
            }
            None => {}
        }
    }

    fn number(&mut self, line: u32) {
        let mut is_float = false;
        let hex_or_binary = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
        self.bump();
        if hex_or_binary {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, TokenKind::Number { is_float: false });
            return;
        }
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_digit() || c == '_' => {
                    self.bump();
                }
                // A decimal point — unless it starts a `..` range operator
                // or a method call on the literal (`1.max(2)`).
                Some('.')
                    if self.peek(1) != Some('.')
                        && !matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_') =>
                {
                    is_float = true;
                    self.bump();
                }
                Some('e') | Some('E')
                    if matches!(self.peek(1), Some(c) if c.is_ascii_digit())
                        || (matches!(self.peek(1), Some('+') | Some('-'))
                            && matches!(self.peek(2), Some(c) if c.is_ascii_digit())) =>
                {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(0), Some('+') | Some('-')) {
                        self.bump();
                    }
                }
                // Type suffix (`u32`, `f64`, …).
                Some(c) if c.is_alphabetic() => {
                    let suffix_is_float = c == 'f';
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    is_float |= suffix_is_float;
                    break;
                }
                _ => break,
            }
        }
        self.push(line, TokenKind::Number { is_float });
    }

    fn punct(&mut self, line: u32) {
        const COMPOUND: [&str; 12] = [
            "::<", "::", "==", "!=", "->", "=>", "<=", ">=", "&&", "||", "..=", "..",
        ];
        for op in COMPOUND {
            let matches_op = op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c));
            // `..=` must win over `..`; the list is ordered longest-first
            // for the shared prefix.
            if matches_op {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(line, TokenKind::Op(op.to_string()));
                return;
            }
        }
        let c = self.bump().expect("punct called at a char");
        self.push(line, TokenKind::Op(c.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_ops_and_lines() {
        let out = lex("fn main() {\n    x == 1;\n}");
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 1, 1, 1, 1, 2, 2, 2, 2, 3]);
        assert!(out.tokens[6].is_op("=="));
    }

    #[test]
    fn float_detection() {
        assert!(matches!(
            kinds("1.5")[0],
            TokenKind::Number { is_float: true }
        ));
        assert!(matches!(
            kinds("2e9")[0],
            TokenKind::Number { is_float: true }
        ));
        assert!(matches!(
            kinds("3f64")[0],
            TokenKind::Number { is_float: true }
        ));
        assert!(matches!(
            kinds("42")[0],
            TokenKind::Number { is_float: false }
        ));
        assert!(matches!(
            kinds("0x1E")[0],
            TokenKind::Number { is_float: false }
        ));
        // `0..n` is a range, not a float.
        let k = kinds("0..9");
        assert!(matches!(k[0], TokenKind::Number { is_float: false }));
        assert!(matches!(&k[1], TokenKind::Op(o) if o == ".."));
        // Method call on an integer literal is not a float either.
        let k = kinds("1.max(2)");
        assert!(matches!(k[0], TokenKind::Number { is_float: false }));
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        assert_eq!(kinds(r#""a \" b""#), vec![TokenKind::Str]);
        assert_eq!(kinds(r##"r#"raw "inner" text"#"##), vec![TokenKind::Str]);
        assert_eq!(kinds("'x'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        let k = kinds("&'a str");
        assert!(matches!(k[1], TokenKind::Lifetime));
        // Idents inside strings never become tokens rules could match.
        assert_eq!(kinds(r#""unwrap lock read_page""#), vec![TokenKind::Str]);
    }

    #[test]
    fn comments_are_stripped_and_directives_collected() {
        let out = lex(concat!(
            "// plain comment\n",
            "/* block /* nested */ still comment */\n",
            "let x = 1; // mcn-lint: allow(float-eq, reason = \"test\")\n",
            "/// doc comment with unwrap()\n",
            "fn f() {}\n",
        ));
        assert_eq!(out.directives.len(), 1);
        assert_eq!(out.directives[0].line, 3);
        assert!(out.directives[0].text.contains("allow(float-eq"));
        // No comment text leaks into the token stream.
        assert!(!out
            .tokens
            .iter()
            .any(|t| t.is_ident("unwrap") || t.is_ident("comment")));
    }

    #[test]
    fn compound_operators_merge() {
        let k = kinds("a::b != c -> d ..= e");
        assert!(matches!(&k[1], TokenKind::Op(o) if o == "::"));
        assert!(matches!(&k[3], TokenKind::Op(o) if o == "!="));
        assert!(matches!(&k[5], TokenKind::Op(o) if o == "->"));
        assert!(matches!(&k[7], TokenKind::Op(o) if o == "..="));
    }

    #[test]
    fn raw_identifiers_lex_as_bare_idents() {
        let k = kinds("let r#type = r#fn + 1;");
        assert!(matches!(&k[1], TokenKind::Ident(s) if s == "type"));
        assert!(matches!(&k[3], TokenKind::Ident(s) if s == "fn"));
        // A raw string still lexes as a string, not a raw identifier.
        assert_eq!(kinds(r###"r#"text"#"###), vec![TokenKind::Str]);
        // Struct-field position, the form the resolver meets.
        let k = kinds("struct S { r#match: u32 }");
        assert!(k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "match")));
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "r")));
    }

    #[test]
    fn turbofish_merges_but_shifts_stay_single() {
        // `::<` is one token, so expression-position generics are explicit.
        let k = kinds("v.iter().collect::<Vec<_>>()");
        assert!(k
            .iter()
            .any(|t| matches!(t, TokenKind::Op(o) if o == "::<")));
        // Plain paths still use `::`.
        let k = kinds("Vec::new()");
        assert!(matches!(&k[1], TokenKind::Op(o) if o == "::"));
        // Shift operators are NOT merged into generic-looking compounds:
        // `1 << 2` is two `<` tokens, `x >> 1` two `>` tokens — and nested
        // generics keep their independent closers.
        let k = kinds("1 << 2");
        assert!(matches!(&k[1], TokenKind::Op(o) if o == "<"));
        assert!(matches!(&k[2], TokenKind::Op(o) if o == "<"));
        let k = kinds("Vec<Vec<u8>>");
        let closers = k
            .iter()
            .filter(|t| matches!(t, TokenKind::Op(o) if o == ">"))
            .count();
        assert_eq!(closers, 2);
    }

    #[test]
    fn lexer_survives_malformed_input() {
        // Unterminated string, stray quote, lone backslash: no panic.
        let _ = lex("let s = \"unterminated");
        let _ = lex("'");
        let _ = lex("\\ @ $");
    }
}
