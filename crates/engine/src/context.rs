//! Shared context for path-skyline queries: the in-memory graph plus a
//! cache of ParetoPrep tables.

use mcn_graph::{MultiCostGraph, NodeId};
use mcn_index::RouteIndex;
use mcn_prep::{PrepCache, PrepCacheStats, PrepTable};
use std::sync::Arc;

/// Everything the engine needs to serve [`crate::QueryRequest::PathSkyline`]
/// and [`crate::QueryRequest::AlphaPath`]
/// requests: the multi-cost graph the paths run over and a bounded LRU
/// [`PrepCache`] so concurrent batches towards popular targets share one
/// backward scan.
///
/// Facility skyline/top-k queries read the paged store; path-skyline
/// queries are a pure graph computation, so the context carries the graph
/// separately and is attached to a [`crate::QueryEngine`] with
/// [`crate::QueryEngine::with_path_context`]. One context can be shared by
/// any number of engines (it is `Send + Sync`; the cache locks internally).
pub struct PathContext {
    graph: Arc<MultiCostGraph>,
    cache: PrepCache,
    route_index: Option<Arc<RouteIndex>>,
}

const _: () = crate::assert_send_sync::<PathContext>();

impl PathContext {
    /// Creates a context over `graph` whose cache keeps at most
    /// `cache_capacity` prep tables (clamped to ≥ 1).
    pub fn new(graph: Arc<MultiCostGraph>, cache_capacity: usize) -> Self {
        Self {
            graph,
            cache: PrepCache::new(cache_capacity),
            route_index: None,
        }
    }

    /// Attaches a prebuilt [`RouteIndex`] so path queries it can serve
    /// exactly skip the prep-backed tier. An index that does not match the
    /// graph shape or is not exact is kept but never consulted — every
    /// query falls back to the prep-backed algorithms transparently.
    pub fn with_route_index(mut self, index: Arc<RouteIndex>) -> Self {
        self.route_index = Some(index);
        self
    }

    /// The attached route index, if any.
    pub fn route_index(&self) -> Option<&Arc<RouteIndex>> {
        self.route_index.as_ref()
    }

    /// The route index, provided it can serve queries over this context's
    /// graph exactly ([`RouteIndex::serves`]): the per-query dispatch
    /// predicate.
    pub fn serving_index(&self) -> Option<&RouteIndex> {
        self.route_index
            .as_deref()
            .filter(|idx| idx.serves(&self.graph))
    }

    /// The graph path queries run over.
    pub fn graph(&self) -> &Arc<MultiCostGraph> {
        &self.graph
    }

    /// The prep-table cache.
    pub fn cache(&self) -> &PrepCache {
        &self.cache
    }

    /// The prep table for `target`: cached, or built by a backward scan and
    /// cached on a miss.
    pub fn table_for(&self, target: NodeId) -> Arc<PrepTable> {
        self.cache.get_or_build(&self.graph, target)
    }

    /// [`PathContext::table_for`] under an observability context: records
    /// `prep-lookup` (and `prep-build` on a miss) spans when tracing is
    /// enabled. Returns the same table as the unobserved variant.
    pub fn table_for_observed(
        &self,
        target: NodeId,
        obs: Option<&mcn_obs::Obs>,
        tier: &str,
        query: u64,
    ) -> Arc<PrepTable> {
        self.cache
            .get_or_build_observed(&self.graph, target, obs, tier, query)
    }

    /// Snapshot of the cache counters (the `prep` experiment's cold/warm
    /// evidence).
    pub fn cache_stats(&self) -> PrepCacheStats {
        self.cache.stats()
    }

    /// Empties the cache — the "cold" starting condition.
    pub fn clear_cache(&self) {
        self.cache.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_graph::{CostVec, GraphBuilder};

    #[test]
    fn context_builds_and_caches_tables() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, CostVec::from_slice(&[1.0, 2.0])).unwrap();
        let ctx = PathContext::new(Arc::new(b.build().unwrap()), 4);
        let first = ctx.table_for(c);
        let second = ctx.table_for(c);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(ctx.cache_stats().hits, 1);
        ctx.clear_cache();
        assert!(ctx.cache().is_empty());
        assert_eq!(ctx.graph().num_nodes(), 2);
    }
}
