//! JSON round-trip properties for the `mcn-gen` configuration types:
//! workload specs, facility specs and cost distributions must survive
//! persistence so experiment configurations can be stored next to the
//! reports they produced.

use mcn_gen::{CostDistribution, FacilitySpec, WorkloadSpec};
use proptest::prelude::*;
use serde::json::{from_str, to_string};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    from_str(&to_string(value)).expect("round-trip parse")
}

fn distribution(choice: u8) -> CostDistribution {
    match choice % 3 {
        0 => CostDistribution::Independent,
        1 => CostDistribution::Correlated,
        _ => CostDistribution::AntiCorrelated,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn workload_spec_roundtrips(
        nodes in 100usize..1_000_000,
        facilities in 10usize..100_000,
        cost_types in 1usize..=8,
        choice in any::<u8>(),
        clusters in 1usize..20,
        queries in 1usize..500,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec {
            nodes,
            facilities,
            cost_types,
            distribution: distribution(choice),
            clusters,
            queries,
            seed,
        };
        prop_assert_eq!(roundtrip(&spec), spec.clone());
        // The named helpers round-trip too.
        prop_assert_eq!(WorkloadSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn facility_spec_roundtrips(
        count in 0usize..1_000_000,
        clusters in 1usize..50,
        sigma_hops in 0.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let spec = FacilitySpec { count, clusters, sigma_hops, seed };
        prop_assert_eq!(roundtrip(&spec), spec.clone());
        prop_assert_eq!(FacilitySpec::from_json(&spec.to_json()).unwrap(), spec);
    }
}

#[test]
fn cost_distribution_variants_roundtrip() {
    for dist in [
        CostDistribution::Independent,
        CostDistribution::Correlated,
        CostDistribution::AntiCorrelated,
    ] {
        assert_eq!(roundtrip(&dist), dist);
        // Unit variants are externally tagged as bare strings.
        assert_eq!(to_string(&dist), format!("\"{dist:?}\""));
    }
}

#[test]
fn paper_defaults_survive_persistence() {
    let spec = WorkloadSpec::paper_default();
    let json = spec.to_json();
    assert!(json.contains("\"seed\": 2010"));
    assert_eq!(WorkloadSpec::from_json(&json).unwrap(), spec);
    assert!(
        WorkloadSpec::from_json("{\"nodes\": 1}").is_err(),
        "missing fields must error"
    );
    assert!(WorkloadSpec::from_json("not json").is_err());
}
