//! Property tests for the observability types: JSON round-trips must be
//! byte-exact on reserialization, and histogram percentiles must be
//! sound bucket upper bounds of the recorded multiset.

use mcn_obs::{
    bucket_index, bucket_upper, chrome_trace_json, parse_chrome_trace, prometheus_text, Histogram,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SpanEvent,
};
use proptest::prelude::*;

const NAMES: [&str; 6] = [
    "storage.logical_reads",
    "storage.buffer_hits",
    "prep.cache.hits",
    "engine.latency_ns",
    "queries",
    "io.physical_reads",
];
const LABEL_KEYS: [&str; 3] = ["tier", "region", "worker"];
const LABEL_VALS: [&str; 4] = ["skyline", "topk", "r0", "w1"];
const PHASES: [&str; 5] = ["schedule", "prep-lookup", "search", "unpack", "fingerprint"];

fn labels_from(picks: &[(u8, u8)]) -> Vec<(String, String)> {
    let mut labels: Vec<(String, String)> = picks
        .iter()
        .map(|&(k, v)| {
            (
                LABEL_KEYS[k as usize % LABEL_KEYS.len()].to_string(),
                LABEL_VALS[v as usize % LABEL_VALS.len()].to_string(),
            )
        })
        .collect();
    labels.sort();
    labels.dedup_by(|a, b| a.0 == b.0);
    labels
}

proptest! {
    /// Histogram snapshots survive JSON round-trips byte-exactly, and the
    /// stored percentiles are upper bounds of the true order statistics.
    #[test]
    fn histogram_snapshot_round_trip_and_percentile_bounds(
        values in proptest::collection::vec(any::<u64>(), 0..200),
        label_picks in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..3),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot("lat", labels_from(&label_picks));

        // Round trip: parse(serialize(x)) == x, reserialization byte-exact.
        let text = serde::json::to_string_pretty(&snap);
        let back: HistogramSnapshot = serde::json::from_str(&text).unwrap();
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(serde::json::to_string_pretty(&back), text);

        // Structural invariants.
        prop_assert_eq!(snap.count, values.len() as u64);
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, snap.count);
        prop_assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);

        if values.is_empty() {
            prop_assert_eq!((snap.p50, snap.p95, snap.p99), (0, 0, 0));
        } else {
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for (q, got) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let actual = sorted[rank - 1];
                // Reported value is the log2 bucket upper bound of the true
                // order statistic, clamped to the observed max.
                let expect = bucket_upper(bucket_index(actual)).min(*sorted.last().unwrap());
                prop_assert_eq!(got, expect);
                prop_assert!(got >= actual);
            }
            prop_assert_eq!(snap.max, *sorted.last().unwrap());
            prop_assert_eq!(snap.min, sorted[0]);
        }
    }

    /// Full registry snapshots (counters + gauges + histograms) round-trip
    /// through JSON byte-exactly, and the Prometheus exposition renders
    /// every sample without panicking.
    #[test]
    fn metrics_snapshot_round_trip(
        counters in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec((any::<u8>(), any::<u8>()), 0..3), any::<u64>()),
            0..8,
        ),
        gauges in proptest::collection::vec((any::<u8>(), 0.0f64..1e12), 0..4),
        hist_values in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let reg = MetricsRegistry::new();
        for (pick, label_picks, value) in &counters {
            let labels = labels_from(label_picks);
            let l: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            reg.counter(NAMES[*pick as usize % NAMES.len()], &l).set(*value);
        }
        for (pick, value) in &gauges {
            reg.gauge(NAMES[*pick as usize % NAMES.len()], &[]).set(*value);
        }
        let h = reg.histogram("latency", &[("tier", "skyline")]);
        for &v in &hist_values {
            h.record(v);
        }

        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_json(), text);

        // Snapshot output is sorted by (name, labels).
        let keys: Vec<_> = snap.counters.iter().map(|c| (c.name.clone(), c.labels.clone())).collect();
        let mut sorted_keys = keys.clone();
        sorted_keys.sort();
        prop_assert_eq!(keys, sorted_keys);

        let exposition = prometheus_text(&snap);
        let samples = snap.counters.len() + snap.gauges.len();
        prop_assert!(exposition.lines().filter(|l| !l.starts_with('#')).count() >= samples);
    }

    /// Span events export to chrome trace JSON that parses back to the
    /// same events (scaled to microseconds) and reserializes byte-exactly.
    #[test]
    fn chrome_trace_round_trip(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>(), 0u32..16, 0u64..(u64::MAX / 2), 0u64..1_000_000_000),
            0..40,
        )
    ) {
        let events: Vec<SpanEvent> = raw
            .into_iter()
            .map(|(name, tier, query, worker, start_ns, dur_ns)| SpanEvent {
                name: PHASES[name as usize % PHASES.len()].to_string(),
                tier: LABEL_VALS[tier as usize % LABEL_VALS.len()].to_string(),
                query,
                worker,
                start_ns,
                dur_ns,
            })
            .collect();
        let text = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&text).unwrap();
        prop_assert_eq!(parsed.len(), events.len());
        for (t, e) in parsed.iter().zip(&events) {
            prop_assert_eq!(&t.name, &e.name);
            prop_assert_eq!(&t.cat, &e.tier);
            prop_assert_eq!(t.args.query, e.query);
            prop_assert_eq!(t.tid, u64::from(e.worker) + 1);
            prop_assert!(t.dur >= 0.0);
            prop_assert_eq!(&t.ph, "X");
        }
        prop_assert_eq!(serde::json::to_string_pretty(&parsed), text);
    }
}
