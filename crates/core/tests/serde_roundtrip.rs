//! JSON round-trip property for `QueryStats`, the one `mcn-core` type with
//! serde derives (it nests `std::time::Duration` and `IoStats`).

use mcn_core::QueryStats;
use mcn_storage::IoStats;
use proptest::prelude::*;
use serde::json::{from_str, to_string};
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_stats_roundtrip(
        secs in 0u64..1_000_000,
        nanos in 0u32..1_000_000_000,
        logical_reads in any::<u64>(),
        buffer_misses in any::<u64>(),
        nodes_settled in any::<usize>(),
        heap_pushes in any::<usize>(),
        candidates in any::<usize>(),
        result_size in 0usize..1_000_000,
    ) {
        let stats = QueryStats {
            algorithm: format!("algo-{result_size}"),
            elapsed: Duration::new(secs, nanos),
            io: IoStats {
                logical_reads,
                buffer_misses,
                ..Default::default()
            },
            nodes_settled,
            heap_pushes,
            heap_pops: heap_pushes / 2,
            candidates,
            pinned: candidates / 2,
            dominance_checks: heap_pushes,
            result_size,
        };
        let back: QueryStats = from_str(&to_string(&stats)).expect("round-trip parse");
        prop_assert_eq!(back, stats);
    }
}

#[test]
fn default_stats_roundtrip() {
    let stats = QueryStats::default();
    let json = to_string(&stats);
    assert!(json.contains("\"elapsed\""));
    assert_eq!(from_str::<QueryStats>(&json).unwrap(), stats);
}
