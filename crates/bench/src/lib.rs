//! # mcn-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! Section VI evaluation, plus Criterion micro-benchmarks (one per figure).
//!
//! The paper's metric is total processing time on a real disk, which is
//! dominated by I/O (84–95 %). This reproduction runs on a simulated
//! in-memory disk, so for every data point the harness reports:
//!
//! * mean **physical page reads** per query (the paper's real cost driver),
//! * mean **CPU time** per query,
//! * mean **charged time** = CPU + physical reads × a configurable random-read
//!   latency (default 5 ms, a 2010-era disk), which is the column to compare
//!   against the paper's time axis,
//! * buffer hit ratio, candidates, pinned facilities and result sizes.
//!
//! Workloads default to the paper's parameters scaled down by a configurable
//! factor (50× by default) so the full sweep finishes in minutes; pass
//! `--scale 1` to the `experiments` binary for the full-size configuration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alpha;
pub mod experiments;
pub mod gate;
pub mod index;
pub mod measure;
pub mod obs;
pub mod partition;
pub mod prep;
pub mod report;
pub mod requests;
pub mod throughput;

pub use alpha::{
    measure_scalarized, render_alpha_table, run_alpha, run_alpha_on_graph, AlphaConfig,
    AlphaReport, AlphaRow, ScalarMetrics, ALPHA_ID, MIN_SETTLED_REDUCTION, MIN_SKYLINE_ADVANTAGE,
};
pub use experiments::{all_experiments, Experiment, ExperimentConfig};
pub use gate::{
    compare_alpha_gate, compare_gate, compare_index_gate, compare_label_gate, run_alpha_gate,
    run_gate, run_index_gate, run_label_gate, AlphaGateConfig, AlphaGatePoint,
    AlphaSettledBaseline, GateBaseline, GateConfig, GatePoint, GateTable, IndexGateConfig,
    IndexGatePoint, IndexLatencyBaseline, LabelBaseline, LabelGateConfig, LabelGatePoint,
    GATE_TOLERANCE,
};
pub use index::{
    measure_index, render_index_table, run_index, run_index_on_graph, IndexExperimentConfig,
    IndexMetrics, IndexReport, IndexRow, INDEX_ID, MIN_INDEX_REDUCTION,
};
pub use measure::{measure_point, AlgoMeasurement, PointMeasurement, QueryKind};
pub use obs::{
    render_obs_table, run_obs, ObsExperimentConfig, ObsReport, ObsRow, MAX_DISABLED_OVERHEAD,
    OBS_ID,
};
pub use partition::{
    dimacs_workload, render_partition_table, run_partition, run_partition_on, PartitionConfig,
    PartitionRow, PartitionTable, PARTITION_ID,
};
pub use prep::{
    dimacs_graph, measure_labels, render_prep_table, run_prep, run_prep_on_graph, LabelMetrics,
    PrepConfig, PrepReport, PrepRow, MIN_LABEL_REDUCTION, PREP_ID,
};
pub use report::{render_table, ExperimentTable, Row};
pub use throughput::{
    build_request_batch, render_throughput_table, run_throughput, ThroughputConfig, ThroughputRow,
    ThroughputTable, THROUGHPUT_ID,
};
